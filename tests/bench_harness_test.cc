// Bench-harness regression tests: the strict flag parser (order-independent
// --quick, rejected unknown flags / malformed numbers) and the shared
// BenchJsonWriter schema output.

#include "bench/harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace meerkat {
namespace {

// argv builder: gtest owns the strings, the parser sees char**.
struct Args {
  explicit Args(std::vector<std::string> words) : storage(std::move(words)) {
    ptrs.push_back(const_cast<char*>("bench_test"));
    for (std::string& w : storage) {
      ptrs.push_back(w.data());
    }
  }
  int argc() { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }

  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(ParseBenchArgsTest, DefaultsWithoutFlags) {
  Args args({});
  BenchOptions opt;
  std::string error;
  ASSERT_TRUE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error)) << error;
  EXPECT_FALSE(opt.quick);
  EXPECT_EQ(opt.measure_ms, 20u);
  EXPECT_EQ(opt.warmup_ms, 4u);
  EXPECT_TRUE(opt.out.empty());
}

TEST(ParseBenchArgsTest, QuickSetsShortWindows) {
  Args args({"--quick"});
  BenchOptions opt;
  std::string error;
  ASSERT_TRUE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error)) << error;
  EXPECT_TRUE(opt.quick);
  EXPECT_EQ(opt.measure_ms, 10u);
  EXPECT_EQ(opt.warmup_ms, 2u);
}

TEST(ParseBenchArgsTest, ExplicitFlagWinsOverQuickInEitherOrder) {
  // The historical bug: "--measure-ms=50 --quick" silently clobbered the
  // explicit window because --quick overwrote options positionally.
  for (auto words : {std::vector<std::string>{"--measure-ms=50", "--quick"},
                     std::vector<std::string>{"--quick", "--measure-ms=50"}}) {
    Args args(words);
    BenchOptions opt;
    std::string error;
    ASSERT_TRUE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error)) << error;
    EXPECT_TRUE(opt.quick);
    EXPECT_EQ(opt.measure_ms, 50u) << "explicit flag lost with order: " << words[0];
    EXPECT_EQ(opt.warmup_ms, 2u);  // Untouched quick default still applies.
  }
}

TEST(ParseBenchArgsTest, AllValueFlagsParse) {
  Args args({"--measure-ms=7", "--warmup-ms=3", "--clients-per-thread=5",
             "--keys-per-thread=123", "--seed=99", "--net-jitter-ns=450",
             "--out=custom.json"});
  BenchOptions opt;
  std::string error;
  ASSERT_TRUE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error)) << error;
  EXPECT_EQ(opt.measure_ms, 7u);
  EXPECT_EQ(opt.warmup_ms, 3u);
  EXPECT_EQ(opt.clients_per_thread, 5u);
  EXPECT_EQ(opt.keys_per_thread, 123u);
  EXPECT_EQ(opt.seed, 99u);
  EXPECT_EQ(opt.net_jitter_ns, 450u);
  EXPECT_EQ(opt.out, "custom.json");
}

TEST(ParseBenchArgsTest, UnknownFlagIsRejected) {
  // The historical bug: unknown flags were silently ignored, so a typo'd
  // sweep ran with defaults and nobody noticed.
  Args args({"--quikc"});
  BenchOptions opt;
  std::string error;
  EXPECT_FALSE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error));
  EXPECT_NE(error.find("--quikc"), std::string::npos);
}

TEST(ParseBenchArgsTest, MalformedNumbersAreRejectedNotThrown) {
  for (const char* bad : {"--seed=abc", "--seed=", "--seed=-3", "--seed=12x",
                          "--measure-ms=1e3", "--keys-per-thread=99999999999999999999999"}) {
    Args args({bad});
    BenchOptions opt;
    std::string error;
    EXPECT_FALSE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error))
        << "accepted " << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ParseBenchArgsTest, EmptyOutPathIsRejected) {
  Args args({"--out="});
  BenchOptions opt;
  std::string error;
  EXPECT_FALSE(ParseBenchArgsInto(args.argc(), args.argv(), &opt, &error));
}

TEST(ParseBenchArgsTest, BenchOutPathPrefersOverride) {
  BenchOptions opt;
  EXPECT_EQ(BenchOutPath(opt, "fig4"), "BENCH_fig4.json");
  opt.out = "/tmp/other.json";
  EXPECT_EQ(BenchOutPath(opt, "fig4"), "/tmp/other.json");
}

TEST(ParseBenchArgsTest, ZipfTagIsStable) {
  EXPECT_EQ(ZipfTag(0.0), "z000");
  EXPECT_EQ(ZipfTag(0.6), "z060");
  EXPECT_EQ(ZipfTag(0.85), "z085");
  EXPECT_EQ(ZipfTag(1.0), "z100");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(BenchJsonWriterTest, WritesSchemaResultsAndMetrics) {
  BenchJsonWriter out("harness_test");
  out.Add("row_a", {{"goodput_mtps", 1.25}, {"abort_rate", 0.5}});
  out.Add("row_b", 1e6, 2.5, 9.75);
  PointResult p;
  p.goodput_mtps = 3.5;
  p.committed = 42;
  out.AddPoint("row_c", p);
  EXPECT_EQ(out.size(), 3u);
  out.SetMetrics(SnapshotMetrics());

  std::string path = ::testing::TempDir() + "/bench_harness_test_out.json";
  ASSERT_TRUE(out.WriteTo(path));
  std::string json = ReadFile(path);
  std::remove(path.c_str());

  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"harness_test\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\": \"row_a\", \"goodput_mtps\": 1.25, \"abort_rate\": 0.5}"),
            std::string::npos);
  EXPECT_NE(json.find("\"ops_per_sec\": 1e+06"), std::string::npos);
  EXPECT_NE(json.find("\"committed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  // Balanced braces => structurally complete output.
  int depth = 0;
  for (char c : json) {
    if (c == '{') depth++;
    if (c == '}') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(BenchJsonWriterTest, NonFiniteValuesClampToZero) {
  BenchJsonWriter out("harness_test_nan");
  out.Add("degenerate", {{"nan_field", std::nan("")},
                         {"inf_field", HUGE_VAL},
                         {"ok_field", 2.0}});
  std::string path = ::testing::TempDir() + "/bench_harness_test_nan.json";
  ASSERT_TRUE(out.WriteTo(path));
  std::string json = ReadFile(path);
  std::remove(path.c_str());
  EXPECT_NE(json.find("\"nan_field\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"inf_field\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"ok_field\": 2"), std::string::npos);
  // No bare nan/inf literals (which JSON forbids) in any value position.
  EXPECT_EQ(json.find(": nan"), std::string::npos);
  EXPECT_EQ(json.find(": -nan"), std::string::npos);
  EXPECT_EQ(json.find(": inf"), std::string::npos);
}

TEST(BenchJsonWriterTest, WriteToUnwritablePathFails) {
  BenchJsonWriter out("harness_test_fail");
  out.Add("row", {{"v", 1.0}});
  EXPECT_FALSE(out.WriteTo("/nonexistent-dir/bench.json"));
}

}  // namespace
}  // namespace meerkat
