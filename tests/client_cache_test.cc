// Inter-transaction client read cache (DESIGN.md §13).
//
// Unit coverage: lease algebra, LRU/capacity bounds, straggler protection,
// piggybacked-hint application, abort-driven eviction with the contended-key
// cutoff, and the ReadValueScratch table the sessions use for repeat reads.
// End-to-end coverage under the simulator: the 9-message cached-read budget,
// read-your-own-writes across transactions, stale cache entries aborting (and
// never committing) with abort-reason fidelity, hint-driven invalidation, and
// cross-session sharing. A threaded section exercises the shared cache from
// concurrent sessions (runs under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/client_cache.h"
#include "src/common/metrics.h"
#include "src/common/plan.h"
#include "src/protocol/read_scratch.h"
#include "src/store/vstore.h"
#include "tests/test_util.h"

// Thread-local allocation counter wired into global operator new (same
// pattern as the UDP zero-alloc audit): lets the scratch-table test assert a
// warm table performs no per-transaction allocations.
namespace {
thread_local int64_t t_alloc_count = 0;
}  // namespace

__attribute__((noinline)) void* operator new(size_t size) {
  t_alloc_count++;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace meerkat {
namespace {

CacheOptions EnabledCache() {
  // A lease far longer than any test run: freshness comes from hints and
  // abort-driven eviction unless a test overrides the lease explicitly.
  return CacheOptions().WithEnabled(true).WithLease(1'000'000'000'000ULL);
}

uint64_t H(const std::string& key) { return VStore::HashKey(key); }

// --- ClientCache unit tests ------------------------------------------------

TEST(ClientCacheTest, LeaseServesWithinWindowOnly) {
  ClientCache cache(CacheOptions().WithEnabled(true).WithLease(100));
  cache.Insert("k", H("k"), "v", {10, 1}, /*now_ns=*/1000);

  ClientCache::Hit hit;
  EXPECT_TRUE(cache.Lookup("k", /*now_ns=*/1000, &hit));
  EXPECT_EQ(hit.value, "v");
  EXPECT_EQ(hit.wts, (Timestamp{10, 1}));
  EXPECT_TRUE(cache.Lookup("k", /*now_ns=*/1099, &hit));
  EXPECT_FALSE(cache.Lookup("k", /*now_ns=*/1100, &hit)) << "lease end is exclusive";
  // The expired entry stays resident (a refresh re-arms it) but never serves.
  EXPECT_TRUE(cache.Contains("k"));
}

TEST(ClientCacheTest, ZeroLeaseNeverServes) {
  ClientCache cache(CacheOptions().WithEnabled(true).WithLease(0));
  cache.Insert("k", H("k"), "v", {10, 1}, 1000);
  ClientCache::Hit hit;
  EXPECT_FALSE(cache.Lookup("k", 1000, &hit));
}

TEST(ClientCacheTest, ClockRegressionTreatedAsExpired) {
  // A now_ns below the read stamp (time-source weirdness) must fail closed.
  ClientCache cache(CacheOptions().WithEnabled(true).WithLease(100));
  cache.Insert("k", H("k"), "v", {10, 1}, 1000);
  ClientCache::Hit hit;
  EXPECT_FALSE(cache.Lookup("k", 500, &hit));
}

TEST(ClientCacheTest, CapacityIsLruBounded) {
  ClientCache cache(CacheOptions().WithEnabled(true).WithCapacity(3).WithLease(1000));
  cache.Insert("a", H("a"), "1", {10, 1}, 0);
  cache.Insert("b", H("b"), "2", {10, 1}, 0);
  cache.Insert("c", H("c"), "3", {10, 1}, 0);
  // Touch "a" so "b" becomes the LRU victim.
  ClientCache::Hit hit;
  EXPECT_TRUE(cache.Lookup("a", 1, &hit));
  cache.Insert("d", H("d"), "4", {10, 1}, 0);
  EXPECT_EQ(cache.EntryCount(), 3u);
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
}

TEST(ClientCacheTest, StragglerInsertCannotRegressVersion) {
  ClientCache cache(EnabledCache());
  cache.Insert("k", H("k"), "new", {20, 1}, 100);
  // A delayed GetReply carrying an older version arrives afterwards.
  cache.Insert("k", H("k"), "old", {10, 1}, 200);
  ClientCache::Hit hit;
  ASSERT_TRUE(cache.Lookup("k", 200, &hit));
  EXPECT_EQ(hit.value, "new");
  EXPECT_EQ(hit.wts, (Timestamp{20, 1}));
}

TEST(ClientCacheTest, NotFoundReadsCacheBelowEveryRealVersion) {
  // A not-found read is cached as ("", invalid wts); any real version
  // replaces it, and the straggler rule never lets it replace a real one.
  ClientCache cache(EnabledCache());
  cache.Insert("k", H("k"), "", kInvalidTimestamp, 0);
  ClientCache::Hit hit;
  ASSERT_TRUE(cache.Lookup("k", 1, &hit));
  EXPECT_EQ(hit.value, "");
  cache.Insert("k", H("k"), "v", {5, 1}, 2);
  ASSERT_TRUE(cache.Lookup("k", 3, &hit));
  EXPECT_EQ(hit.value, "v");
  cache.Insert("k", H("k"), "", kInvalidTimestamp, 4);
  ASSERT_TRUE(cache.Lookup("k", 5, &hit));
  EXPECT_EQ(hit.value, "v") << "not-found straggler regressed a real version";
}

TEST(ClientCacheTest, HintEvictsStrictlyOlderEntriesOnly) {
  ClientCache cache(EnabledCache());
  cache.Insert("k", H("k"), "v", {10, 1}, 0);
  cache.ApplyHint(H("k"), {10, 1});  // Same version (own write echoed back).
  EXPECT_TRUE(cache.Contains("k"));
  cache.ApplyHint(H("k"), {9, 1});  // Older write: no-op.
  EXPECT_TRUE(cache.Contains("k"));
  cache.ApplyHint(H("unknown"), {99, 1});  // Unindexed hash: no-op.
  EXPECT_TRUE(cache.Contains("k"));
  cache.ApplyHint(H("k"), {11, 1});  // Newer write: entry is stale, drop it.
  EXPECT_FALSE(cache.Contains("k"));
}

TEST(ClientCacheTest, AbortEvictionStopsCachingContendedKeys) {
  CacheOptions options = EnabledCache().WithContendedThreshold(2);
  ClientCache cache(options);
  for (uint32_t round = 0; round < 2; round++) {
    cache.Insert("hot", H("hot"), "v", {10 + round, 1}, 0);
    EXPECT_TRUE(cache.Contains("hot"));
    cache.EvictForAbort("hot", H("hot"));
    EXPECT_FALSE(cache.Contains("hot"));
  }
  EXPECT_TRUE(cache.IsContended(H("hot")));
  cache.Insert("hot", H("hot"), "v", {20, 1}, 0);
  EXPECT_FALSE(cache.Contains("hot")) << "contended key was cached again";
  // Uncontended keys are unaffected.
  cache.Insert("cold", H("cold"), "v", {20, 1}, 0);
  EXPECT_TRUE(cache.Contains("cold"));
}

TEST(ClientCacheTest, DisabledCacheAcceptsCallsAndServesNothing) {
  // Sessions hold a null pointer when disabled, but the System constructs the
  // object either way — direct calls must be safe no-ops for hits.
  ClientCache cache(CacheOptions{});
  EXPECT_FALSE(cache.enabled());
  cache.Insert("k", H("k"), "v", {10, 1}, 0);
  ClientCache::Hit hit;
  EXPECT_FALSE(cache.Lookup("k", 0, &hit));
}

// --- ReadValueScratch unit tests -------------------------------------------

TEST(ReadValueScratchTest, InsertFindOverwriteAndClear) {
  ReadValueScratch scratch;
  EXPECT_EQ(scratch.Find("a"), nullptr);
  scratch.Insert("a", "1");
  ASSERT_NE(scratch.Find("a"), nullptr);
  EXPECT_EQ(*scratch.Find("a"), "1");
  scratch.Insert("a", "2");
  EXPECT_EQ(*scratch.Find("a"), "2");
  EXPECT_EQ(scratch.size(), 1u);
  scratch.Clear();
  EXPECT_EQ(scratch.Find("a"), nullptr);
  EXPECT_EQ(scratch.size(), 0u);
}

TEST(ReadValueScratchTest, GrowsPastInitialCapacity) {
  ReadValueScratch scratch;
  for (int i = 0; i < 200; i++) {
    scratch.Insert("key-" + std::to_string(i), "value-" + std::to_string(i));
  }
  EXPECT_EQ(scratch.size(), 200u);
  for (int i = 0; i < 200; i++) {
    const std::string* v = scratch.Find("key-" + std::to_string(i));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, "value-" + std::to_string(i));
  }
}

TEST(ReadValueScratchTest, WarmTableDoesNotAllocatePerTransaction) {
  ReadValueScratch scratch;
  // Values long enough to defeat the small-string optimization, so buffer
  // reuse (not SSO) is what the zero count proves.
  const std::string value(64, 'x');
  auto one_txn = [&] {
    scratch.Clear();
    for (int i = 0; i < 8; i++) {
      scratch.Insert("key-" + std::to_string(i), value);
      ASSERT_NE(scratch.Find("key-" + std::to_string(i)), nullptr);
    }
  };
  one_txn();  // Warmup: sizes the table and every slot's string capacity.
  // The probe keys themselves are SSO-sized, so a warm "transaction" is
  // allocation-free end to end.
  int64_t before = t_alloc_count;
  for (int txn = 0; txn < 10; txn++) {
    one_txn();
  }
  EXPECT_EQ(t_alloc_count, before) << "warm scratch table allocated";
}

// --- End-to-end: simulator -------------------------------------------------

SystemOptions CachedOptions(SystemKind kind, CacheOptions cache, size_t cores = 1) {
  SystemOptions options = DefaultOptions(kind, cores);
  options.cache = cache;
  return options;
}

// The headline budget: a cached read skips the GET round entirely, so a
// 1-RMW fast-path transaction drops from 11 client messages to 9
// (3 VALIDATE + 3 replies + 3 async COMMIT).
TEST(CachedReadBudgetTest, CachedRmwUsesNineMessages) {
  SimHarness h(CachedOptions(SystemKind::kMeerkat, EnabledCache()));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);

  auto txn_msgs = [&](TxnPlan plan) {
    CoordinationStats before = h.sim().context().stats();
    EXPECT_EQ(h.RunTxn(*session, std::move(plan)), TxnResult::kCommit);
    return h.sim().context().stats().client_msgs - before.client_msgs;
  };

  EXPECT_EQ(txn_msgs(Txn().Rmw("k", "1").Build()), 11u) << "cold read still pays the GET";
  // Read-your-own-writes: the commit populated the cache, so the next
  // transaction's read is local.
  EXPECT_EQ(txn_msgs(Txn().Rmw("k", "2").Build()), 9u);
  EXPECT_EQ(txn_msgs(Txn().Rmw("k", "3").Build()), 9u);
  EXPECT_EQ(h.ValueAt(0, "k"), "3");
}

TEST(CachedReadBudgetTest, ReadYourOwnWriteServesCorrectValue) {
  SimHarness h(CachedOptions(SystemKind::kMeerkat, EnabledCache()));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  EXPECT_EQ(h.RunTxn(*session, Txn().Put("k", "mine").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.RunTxn(*session, Txn().Get("k").Build()), TxnResult::kCommit);
  auto value = session->last_read_value("k");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "mine");
}

TEST(CachedReadBudgetTest, CrossSessionSharingServesPeerReads) {
  // Session 1 populates the System-wide cache; session 2's read of the same
  // key is then local (9-message transaction).
  SimHarness h(CachedOptions(SystemKind::kMeerkat, EnabledCache()));
  h.system().Load("k", "0");
  auto a = h.MakeSession(1);
  auto b = h.MakeSession(2, /*seed=*/7);
  EXPECT_EQ(h.RunTxn(*a, Txn().Get("k").Build()), TxnResult::kCommit);
  CoordinationStats before = h.sim().context().stats();
  EXPECT_EQ(h.RunTxn(*b, Txn().Rmw("k", "1").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.sim().context().stats().client_msgs - before.client_msgs, 9u);
}

// The safety half of the design: a stale cache entry may cost an abort but
// can never commit a stale read. Hints are disabled (hint_ring = 0) and the
// lease never expires, so nothing rescues the entry before validation.
TEST(StaleCacheTest, StaleEntryAbortsWithConflictKeyAndSelfInvalidates) {
  CacheOptions cache = EnabledCache().WithHintRing(0);
  SimHarness h(CachedOptions(SystemKind::kMeerkat, cache));
  h.system().Load("k", "0");
  auto reader = h.MakeSession(1);
  auto writer = h.MakeSession(2, /*seed=*/7);

  // Reader caches k@load-version; writer then moves the key forward. The
  // writer's read-your-own-writes insert keeps the *shared* cache coherent,
  // so to obtain a genuinely stale entry (as a second independent client
  // process would see) the fresh entry is replaced with the load-version one.
  EXPECT_EQ(h.RunTxn(*reader, Txn().Get("k").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.RunTxn(*writer, Txn().Rmw("k", "fresh").Build()), TxnResult::kCommit);
  h.system().client_cache().EvictForAbort("k", H("k"));
  h.system().client_cache().Insert("k", H("k"), "0", {1, 0},
                                   h.time_source().NowNanos());
  ASSERT_TRUE(h.system().client_cache().Contains("k"));

  // The reader's next transaction serves k from the now-stale cache entry;
  // commit-time validation must reject it and name the offending key.
  TxnOutcome outcome = h.RunTxnOutcome(*reader, Txn().Rmw("k", "stale-write").Build());
  EXPECT_EQ(outcome.result, TxnResult::kAbort);
  EXPECT_EQ(outcome.conflict_hash, H("k"));
  EXPECT_EQ(outcome.conflict_key, "k");
  // Nothing stale reached the store.
  EXPECT_EQ(h.ValueAt(0, "k"), "fresh");
  // Dynamic self-invalidation dropped the entry...
  EXPECT_FALSE(h.system().client_cache().Contains("k"));
  // ...so the retry reads over the network and commits against fresh state.
  EXPECT_EQ(h.RunTxn(*reader, Txn().Rmw("k", "retry").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.ValueAt(0, "k"), "retry");
}

TEST(StaleCacheTest, AbortReasonFidelityWorksWithCacheDisabled) {
  // The conflict-key channel is an independent satellite: it must report the
  // failing read even when no cache is involved. Two sessions, interleaved
  // manually: A reads k over the network, B commits a newer k, then A tries
  // to commit against its now-stale read.
  SimHarness h(DefaultOptions(SystemKind::kMeerkat));
  h.system().Load("k", "0");
  h.system().Load("other", "0");
  auto a = h.MakeSession(1);
  auto b = h.MakeSession(2, /*seed=*/7);

  // A's RMW transform launches B's conflicting RMW between A's read of k and
  // A's commit, so the two transactions overlap on the key.
  bool b_ran = false;
  std::optional<TxnOutcome> b_outcome;
  TxnPlan plan;
  plan.ops.push_back(Op::RmwFn("k", [&](const std::string& read) {
    if (!b_ran) {
      b_ran = true;
      // Runs while A's transaction is between read and commit.
      b->ExecuteAsync(Txn().Rmw("k", "b-wins").Build(),
                      [&b_outcome](const TxnOutcome& o) { b_outcome = o; });
    }
    return read + "-a";
  }));
  TxnOutcome a_outcome = h.RunTxnOutcome(*a, std::move(plan));
  ASSERT_TRUE(b_ran);
  ASSERT_TRUE(b_outcome.has_value());
  // OCC cannot let both overlapping RMWs of one key commit.
  ASSERT_TRUE(a_outcome.result == TxnResult::kAbort ||
              b_outcome->result == TxnResult::kAbort);
  // Every abort must name the key it lost on.
  if (a_outcome.result == TxnResult::kAbort) {
    EXPECT_EQ(a_outcome.conflict_hash, H("k"));
    EXPECT_EQ(a_outcome.conflict_key, "k");
  }
  if (b_outcome->result == TxnResult::kAbort) {
    EXPECT_EQ(b_outcome->conflict_hash, H("k"));
    EXPECT_EQ(b_outcome->conflict_key, "k");
  }
}

TEST(HintInvalidationTest, PiggybackedHintsEvictStaleEntries) {
  // One core so every transaction's validation drains the same recent-writes
  // ring. Reader caches k; writer commits a new k and then runs a transaction
  // on an unrelated key — the validation replies of that second transaction
  // carry the ring hint naming k, which must evict the reader's stale entry.
  SimHarness h(CachedOptions(SystemKind::kMeerkat, EnabledCache(), /*cores=*/1));
  h.system().Load("k", "0");
  h.system().Load("other", "0");
  auto reader = h.MakeSession(1);
  auto writer = h.MakeSession(2, /*seed=*/7);

  EXPECT_EQ(h.RunTxn(*reader, Txn().Get("k").Build()), TxnResult::kCommit);
  ASSERT_TRUE(h.system().client_cache().Contains("k"));
  EXPECT_EQ(h.RunTxn(*writer, Txn().Put("k", "fresh").Build()), TxnResult::kCommit);
  // The writer's own commit re-inserted k (read-your-own-writes) at the new
  // version; hints at the same version keep it. Force the shared entry stale
  // again from the reader's perspective by evicting and re-reading... no:
  // the RYOW insert *is* the fresh version, so the cache is already
  // coherent. To observe hint-driven eviction, wipe the RYOW entry and plant
  // a stale one.
  h.system().client_cache().EvictForAbort("k", H("k"));
  h.system().client_cache().Insert("k", H("k"), "0", {1, 0}, 0);
  ASSERT_TRUE(h.system().client_cache().Contains("k"));

  uint64_t invalidated_before = SnapshotMetrics(false).CounterValue("cache.invalidated");
  EXPECT_EQ(h.RunTxn(*writer, Txn().Rmw("other", "1").Build()), TxnResult::kCommit);
  EXPECT_FALSE(h.system().client_cache().Contains("k"))
      << "validation replies did not carry the invalidation hint";
  EXPECT_GT(SnapshotMetrics(false).CounterValue("cache.invalidated"), invalidated_before);
}

TEST(HintInvalidationTest, OwnWriteHintsDoNotEvictReadYourOwnWrites) {
  // The writer's validation replies echo hints for its own just-committed
  // version; ApplyHint must keep the equal-version RYOW entry, so chained
  // RMWs keep hitting the cache instead of being invalidated by themselves.
  SimHarness h(CachedOptions(SystemKind::kMeerkat, EnabledCache(), /*cores=*/1));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "1").Build()), TxnResult::kCommit);
  uint64_t hits_before = SnapshotMetrics(false).CounterValue("cache.hit");
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "2").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "3").Build()), TxnResult::kCommit);
  EXPECT_EQ(SnapshotMetrics(false).CounterValue("cache.hit") - hits_before, 2u);
  EXPECT_EQ(h.ValueAt(0, "k"), "3");
}

TEST(HintInvalidationTest, DisabledCacheProducesNoHints) {
  // With the default options the replica must not even populate the ring —
  // the hint machinery is pay-for-what-you-use.
  SimHarness h(DefaultOptions(SystemKind::kMeerkat));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  CoordinationStats before = h.sim().context().stats();
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "1").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "2").Build()), TxnResult::kCommit);
  // Unchanged 11-message budget per txn: nothing was served from a cache.
  EXPECT_EQ(h.sim().context().stats().client_msgs - before.client_msgs, 22u);
}

TEST(CacheMetricsTest, HitMissAndEvictionCountersMove) {
  SimHarness h(CachedOptions(SystemKind::kMeerkat, EnabledCache()));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  MetricsSnapshot before = SnapshotMetrics(false);
  EXPECT_EQ(h.RunTxn(*session, Txn().Get("k").Build()), TxnResult::kCommit);  // Miss.
  EXPECT_EQ(h.RunTxn(*session, Txn().Get("k").Build()), TxnResult::kCommit);  // Hit.
  MetricsSnapshot after = SnapshotMetrics(false);
  EXPECT_GT(after.CounterValue("cache.miss"), before.CounterValue("cache.miss"));
  EXPECT_GT(after.CounterValue("cache.hit"), before.CounterValue("cache.hit"));
}

// TAPIR sessions share MeerkatSession's client code; the cache must work
// there identically.
TEST(CachedReadBudgetTest, TapirSessionsUseTheCacheToo) {
  SimHarness h(CachedOptions(SystemKind::kTapir, EnabledCache()));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "1").Build()), TxnResult::kCommit);
  CoordinationStats before = h.sim().context().stats();
  EXPECT_EQ(h.RunTxn(*session, Txn().Rmw("k", "2").Build()), TxnResult::kCommit);
  EXPECT_EQ(h.sim().context().stats().client_msgs - before.client_msgs, 9u);
}

// --- Threaded: shared cache under real concurrency (TSan in CI) ------------

TEST(ClientCacheThreadedTest, ConcurrentSessionsShareOneCache) {
  SystemOptions sys = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  sys.cache = CacheOptions().WithEnabled(true).WithLease(5'000'000).WithCapacity(64);
  sys.retry = RetryPolicy::WithTimeout(3'000'000);
  ThreadedHarness h(sys);
  constexpr int kKeys = 8;
  for (int i = 0; i < kKeys; i++) {
    h.system().Load("key-" + std::to_string(i), "0");
  }

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 60;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto session = h.system().CreateSession(static_cast<uint32_t>(t + 1),
                                              /*seed=*/1000 + static_cast<uint64_t>(t));
      Rng rng(static_cast<uint64_t>(t) * 77 + 1);
      for (int i = 0; i < kTxnsPerThread; i++) {
        std::string key = "key-" + std::to_string(rng.NextBounded(kKeys));
        TxnPlan plan;
        if (rng.NextBounded(100) < 80) {
          plan.ops.push_back(Op::Get(key));
        } else {
          plan.ops.push_back(Op::Rmw(key, std::to_string(i)));
        }
        std::atomic<bool> done{false};
        TxnResult result = TxnResult::kFailed;
        session->ExecuteAsync(std::move(plan), [&](const TxnOutcome& o) {
          result = o.result;
          done.store(true, std::memory_order_release);
        });
        while (!done.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        if (result == TxnResult::kCommit) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_GT(committed.load(), kThreads * kTxnsPerThread / 2);
  EXPECT_LE(h.system().client_cache().EntryCount(), 64u);
}

}  // namespace
}  // namespace meerkat
