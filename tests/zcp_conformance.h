// Shared gtest hook: assert a test binary's whole run produced zero runtime
// DAP violations (src/common/dap_check.h). Including this header from a test
// file registers a global environment whose teardown fails the binary if any
// cross-core fast-path access was detected — turning every clean protocol run
// into a DAP audit.

#ifndef MEERKAT_TESTS_ZCP_CONFORMANCE_H_
#define MEERKAT_TESTS_ZCP_CONFORMANCE_H_

#include <gtest/gtest.h>

#include "src/common/dap_check.h"

namespace meerkat {

class ZeroDapViolationsEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    DapAudit::SetMode(DapMode::kCount);
    DapAudit::ResetViolations();
  }
  void TearDown() override {
    EXPECT_EQ(DapAudit::violations(), 0u)
        << "cross-core fast-path accesses detected; rerun under "
           "DapMode::kAbort to pinpoint the site";
  }
};

namespace {
::testing::Environment* const kZeroDapViolationsEnv =
    ::testing::AddGlobalTestEnvironment(new ZeroDapViolationsEnvironment);
}  // namespace

}  // namespace meerkat

#endif  // MEERKAT_TESTS_ZCP_CONFORMANCE_H_
