// Stress tests for the MPSC channel's fast-path machinery: multi-producer
// pushes against a batch-draining consumer, the push/close race, and the
// FIFO-per-producer ordering guarantee through PopAll. Run these under
// ThreadSanitizer (see .github/workflows/ci.yml) to validate the lock-free
// spin-phase atomics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/transport/channel.h"

namespace meerkat {
namespace {

TEST(ChannelStressTest, MultiProducerBatchDrainDeliversEverythingInOrder) {
  Channel<uint64_t> ch;
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 20000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&ch, p] {
      // Encode (producer, seq) so the consumer can check per-producer FIFO.
      for (uint64_t i = 0; i < kPerProducer; i++) {
        ASSERT_TRUE(ch.Push((static_cast<uint64_t>(p) << 32) | i));
      }
    });
  }

  uint64_t total = 0;
  uint64_t batches = 0;
  uint64_t max_batch = 0;
  std::vector<uint64_t> next_seq(kProducers, 0);
  std::thread consumer([&] {
    std::vector<uint64_t> batch;
    while (ch.PopAll(batch)) {
      batches++;
      max_batch = std::max<uint64_t>(max_batch, batch.size());
      for (uint64_t v : batch) {
        uint64_t p = v >> 32;
        uint64_t seq = v & 0xFFFFFFFFu;
        // A producer's items arrive in the order it pushed them, even across
        // batch boundaries.
        ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
        next_seq[p]++;
        total++;
      }
    }
  });

  for (auto& t : producers) {
    t.join();
  }
  ch.Close();
  consumer.join();

  EXPECT_EQ(total, static_cast<uint64_t>(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; p++) {
    EXPECT_EQ(next_seq[p], kPerProducer);
  }
  // The whole point of PopAll: strictly fewer lock round-trips than messages
  // whenever the consumer ever falls behind. (>= 1 batch always holds.)
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, total);
}

TEST(ChannelStressTest, PushCloseRaceNeverLosesAcceptedItems) {
  // Producers race Close(): every Push that returned true must be delivered;
  // pushes after close must return false. Repeat to catch interleavings.
  for (int round = 0; round < 50; round++) {
    Channel<int> ch;
    std::atomic<uint64_t> accepted{0};
    constexpr int kProducers = 4;
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; p++) {
      producers.emplace_back([&] {
        for (int i = 0; i < 1000; i++) {
          if (ch.Push(i)) {
            accepted.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Channel closed: all subsequent pushes must also fail.
            ASSERT_FALSE(ch.Push(i));
            return;
          }
        }
      });
    }
    uint64_t received = 0;
    std::thread consumer([&] {
      std::vector<int> batch;
      while (ch.PopAll(batch)) {
        received += batch.size();
      }
      // After PopAll returns false the channel must be closed and empty.
      ASSERT_TRUE(ch.closed());
      ASSERT_EQ(ch.Size(), 0u);
    });
    std::thread closer([&] { ch.Close(); });
    for (auto& t : producers) {
      t.join();
    }
    closer.join();
    consumer.join();
    EXPECT_EQ(received, accepted.load());
  }
}

TEST(ChannelStressTest, TryPopAllDrainsWithoutBlocking) {
  Channel<int> ch;
  std::vector<int> out;
  EXPECT_EQ(ch.TryPopAll(out), 0u);  // Empty: returns immediately.
  for (int i = 0; i < 100; i++) {
    ch.Push(i);
  }
  EXPECT_EQ(ch.TryPopAll(out), 100u);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i);
  }
  EXPECT_EQ(ch.Size(), 0u);
  EXPECT_EQ(ch.TryPopAll(out), 0u);
}

TEST(ChannelStressTest, PopAllBlocksUntilPushThenDrains) {
  Channel<int> ch;
  std::vector<int> out;
  std::thread producer([&] {
    // Give the consumer time to pass the spin phase and park on the condvar,
    // exercising the waiter-count notify path.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.Push(1);
    ch.Push(2);
  });
  ASSERT_TRUE(ch.PopAll(out));
  producer.join();
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out[0], 1);
  std::vector<int> rest;
  ch.TryPopAll(rest);
  EXPECT_EQ(out.size() + rest.size(), 2u);
}

TEST(ChannelStressTest, CloseUnblocksParkedBatchConsumer) {
  Channel<int> ch;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_FALSE(ch.PopAll(out));
    EXPECT_TRUE(out.empty());
    returned.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load(std::memory_order_acquire));
  ch.Close();
  consumer.join();
  EXPECT_TRUE(returned.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace meerkat
