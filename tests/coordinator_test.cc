// Unit tests driving CommitCoordinator and BackupCoordinator directly with
// synthetic replies through a capturing transport — exercising quorum edges
// that are awkward to hit end-to-end: epoch-split votes, duplicate replies,
// view supersession, retry exhaustion.

#include <gtest/gtest.h>

#include <optional>

#include "src/protocol/coordinator.h"

namespace meerkat {
namespace {

// Records outbound messages; delivers nothing.
class CapturingTransport : public Transport {
 public:
  void RegisterReplica(ReplicaId, CoreId, TransportReceiver*) override {}
  void RegisterClient(uint32_t, TransportReceiver*) override {}
  void UnregisterClient(uint32_t) override {}
  void Send(Message msg) override { sent.push_back(std::move(msg)); }
  void SetTimer(const Address&, CoreId, uint64_t, uint64_t timer_id) override {
    timers.push_back(timer_id);
  }

  template <typename T>
  size_t Count() const {
    size_t n = 0;
    for (const Message& msg : sent) {
      if (std::holds_alternative<T>(msg.payload)) {
        n++;
      }
    }
    return n;
  }

  template <typename T>
  const T* Last() const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (const T* p = std::get_if<T>(&it->payload)) {
        return p;
      }
    }
    return nullptr;
  }

  std::vector<Message> sent;
  std::vector<uint64_t> timers;
};

const QuorumConfig kQ3 = QuorumConfig::ForReplicas(3);
const TxnId kTid{1, 1};
const Timestamp kTs{100, 1};

Message ValidateReplyMsg(ReplicaId from, TxnStatus status, EpochNum epoch = 0) {
  Message msg;
  msg.src = Address::Replica(from);
  msg.dst = Address::Client(1);
  msg.payload = ValidateReply{kTid, status, from, epoch};
  return msg;
}

Message AcceptReplyMsg(ReplicaId from, bool ok, ViewNum view = 0) {
  Message msg;
  msg.src = Address::Replica(from);
  msg.dst = Address::Client(1);
  msg.payload = AcceptReply{kTid, view, ok, from, 0};
  return msg;
}

struct CoordinatorUnderTest {
  CapturingTransport transport;
  std::optional<CommitOutcome> outcome;
  std::unique_ptr<CommitCoordinator> coordinator;

  explicit CoordinatorUnderTest(const RetryPolicy& retry = RetryPolicy::Disabled()) {
    coordinator = std::make_unique<CommitCoordinator>(
        &transport, Address::Client(1), kQ3, /*core=*/0, kTid, kTs,
        std::vector<ReadSetEntry>{{"k", Timestamp{1, 0}}},
        std::vector<WriteSetEntry>{{"k", "v"}}, retry, /*timer_base=*/100,
        [this](const CommitOutcome& o) { outcome = o; });
    coordinator->Start();
  }
};

TEST(CommitCoordinatorTest, StartBroadcastsValidates) {
  CoordinatorUnderTest t;
  EXPECT_EQ(t.transport.Count<ValidateRequest>(), 3u);
  const auto* req = t.transport.Last<ValidateRequest>();
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->tid, kTid);
  EXPECT_EQ(req->ts, kTs);
  EXPECT_FALSE(t.coordinator->done());
}

TEST(CommitCoordinatorTest, ValidateFanOutSharesOnePayload) {
  // Copy-free fan-out: all three VALIDATEs reference the same immutable
  // TxnSets object, not per-replica deep copies of the read/write sets.
  CoordinatorUnderTest t;
  std::vector<const ValidateRequest*> reqs;
  for (const Message& msg : t.transport.sent) {
    if (const auto* req = std::get_if<ValidateRequest>(&msg.payload)) {
      reqs.push_back(req);
    }
  }
  ASSERT_EQ(reqs.size(), 3u);
  ASSERT_NE(reqs[0]->sets, nullptr);
  EXPECT_EQ(reqs[0]->sets.get(), reqs[1]->sets.get());
  EXPECT_EQ(reqs[1]->sets.get(), reqs[2]->sets.get());
  ASSERT_EQ(reqs[0]->read_set().size(), 1u);
  EXPECT_EQ(reqs[0]->read_set()[0].key, "k");
  ASSERT_EQ(reqs[0]->write_set().size(), 1u);
  EXPECT_EQ(reqs[0]->write_set()[0].value, "v");
}

TEST(CommitCoordinatorTest, AcceptFanOutSharesValidatePayload) {
  // The slow path's ACCEPTs share the same TxnSets the VALIDATEs carried.
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedAbort));
  t.coordinator->OnMessage(ValidateReplyMsg(2, TxnStatus::kValidatedOk));
  ASSERT_EQ(t.transport.Count<AcceptRequest>(), 3u);
  const auto* validate = t.transport.Last<ValidateRequest>();
  for (const Message& msg : t.transport.sent) {
    if (const auto* accept = std::get_if<AcceptRequest>(&msg.payload)) {
      EXPECT_EQ(accept->sets.get(), validate->sets.get());
    }
  }
}

TEST(CommitCoordinatorTest, FastPathCommitOnSupermajority) {
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedOk));
  EXPECT_FALSE(t.coordinator->done());  // 2 of 3: not yet a supermajority.
  t.coordinator->OnMessage(ValidateReplyMsg(2, TxnStatus::kValidatedOk));
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kCommit);
  EXPECT_TRUE(t.outcome->fast_path());
  EXPECT_EQ(t.outcome->reason, AbortReason::kNone);
  EXPECT_EQ(t.transport.Count<CommitRequest>(), 3u);
  EXPECT_TRUE(t.transport.Last<CommitRequest>()->commit);
  EXPECT_EQ(t.transport.Count<AcceptRequest>(), 0u);  // No slow path.
}

TEST(CommitCoordinatorTest, FastPathAbortOnSupermajorityAbort) {
  CoordinatorUnderTest t;
  for (ReplicaId r = 0; r < 3; r++) {
    t.coordinator->OnMessage(ValidateReplyMsg(r, TxnStatus::kValidatedAbort));
  }
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kAbort);
  EXPECT_TRUE(t.outcome->fast_path());
  EXPECT_EQ(t.outcome->reason, AbortReason::kOccConflict);
  EXPECT_FALSE(t.transport.Last<CommitRequest>()->commit);
}

TEST(CommitCoordinatorTest, MixedVotesTakeSlowPathAndCommit) {
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedOk));
  // 2 matching OKs: the third reply could still complete a supermajority.
  EXPECT_EQ(t.transport.Count<AcceptRequest>(), 0u);
  t.coordinator->OnMessage(ValidateReplyMsg(2, TxnStatus::kValidatedAbort));
  // 2 OK + 1 ABORT: no supermajority; majority OK -> propose commit.
  EXPECT_EQ(t.transport.Count<AcceptRequest>(), 3u);
  EXPECT_TRUE(t.transport.Last<AcceptRequest>()->commit);
  EXPECT_FALSE(t.coordinator->done());

  t.coordinator->OnMessage(AcceptReplyMsg(0, true));
  EXPECT_FALSE(t.coordinator->done());
  t.coordinator->OnMessage(AcceptReplyMsg(1, true));
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kCommit);
  EXPECT_FALSE(t.outcome->fast_path());
  EXPECT_EQ(t.outcome->path, CommitPath::kSlow);
  EXPECT_EQ(t.transport.Count<CommitRequest>(), 3u);
}

TEST(CommitCoordinatorTest, EarlySplitDecidesAtMajorityWithAbort) {
  // At n=3, any 1-1 split already rules out the fast path, and a majority
  // (2 replies) with fewer than f+1 OK votes legitimately proposes ABORT
  // without waiting for the straggler (paper §5.2.2 step 4).
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedAbort));
  ASSERT_EQ(t.transport.Count<AcceptRequest>(), 3u);
  EXPECT_FALSE(t.transport.Last<AcceptRequest>()->commit);
}

TEST(CommitCoordinatorTest, MajorityAbortProposesAbort) {
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedAbort));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedAbort));
  t.coordinator->OnMessage(ValidateReplyMsg(2, TxnStatus::kValidatedOk));
  ASSERT_EQ(t.transport.Count<AcceptRequest>(), 3u);
  EXPECT_FALSE(t.transport.Last<AcceptRequest>()->commit);
  t.coordinator->OnMessage(AcceptReplyMsg(0, true));
  t.coordinator->OnMessage(AcceptReplyMsg(1, true));
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kAbort);
}

TEST(CommitCoordinatorTest, DuplicateRepliesDoNotFormQuorum) {
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  EXPECT_FALSE(t.coordinator->done());
}

TEST(CommitCoordinatorTest, EpochSplitVotesNeverCombine) {
  // Two old-epoch OKs plus one new-epoch OK must not make a fast quorum: the
  // new epoch voids the earlier votes.
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk, /*epoch=*/0));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedOk, /*epoch=*/0));
  t.coordinator->OnMessage(ValidateReplyMsg(2, TxnStatus::kValidatedOk, /*epoch=*/1));
  EXPECT_FALSE(t.coordinator->done());
  // The same replicas re-answering in the new epoch completes it.
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk, /*epoch=*/1));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedOk, /*epoch=*/1));
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kCommit);
}

TEST(CommitCoordinatorTest, SupersededBySufficientAcceptRejects) {
  CoordinatorUnderTest t;
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedAbort));
  t.coordinator->OnMessage(ValidateReplyMsg(2, TxnStatus::kValidatedOk));
  ASSERT_EQ(t.transport.Count<AcceptRequest>(), 3u);
  // Two replicas promised a higher view to a backup coordinator: with only
  // one replica left, a majority of accepts is impossible -> stand down.
  t.coordinator->OnMessage(AcceptReplyMsg(0, false));
  EXPECT_FALSE(t.coordinator->done());
  t.coordinator->OnMessage(AcceptReplyMsg(1, false));
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kFailed);
}

TEST(CommitCoordinatorTest, RetryTimerResendsToMissingReplicasOnly) {
  CoordinatorUnderTest t(RetryPolicy::WithTimeout(1000));
  ASSERT_EQ(t.transport.timers.size(), 1u);
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  size_t before = t.transport.Count<ValidateRequest>();
  t.coordinator->OnTimer(t.transport.timers[0]);
  // Not enough replies for the slow path (needs a majority): re-validate the
  // two silent replicas only.
  EXPECT_EQ(t.transport.Count<ValidateRequest>(), before + 2);
}

TEST(CommitCoordinatorTest, TimerFallsBackToSlowPathWithMajority) {
  CoordinatorUnderTest t(RetryPolicy::WithTimeout(1000));
  t.coordinator->OnMessage(ValidateReplyMsg(0, TxnStatus::kValidatedOk));
  t.coordinator->OnMessage(ValidateReplyMsg(1, TxnStatus::kValidatedOk));
  // Replica 2 is down: the fast path (3 matching) will never materialize.
  t.coordinator->OnTimer(t.transport.timers[0]);
  EXPECT_EQ(t.transport.Count<AcceptRequest>(), 3u);
  EXPECT_TRUE(t.transport.Last<AcceptRequest>()->commit);
  t.coordinator->OnMessage(AcceptReplyMsg(0, true));
  t.coordinator->OnMessage(AcceptReplyMsg(1, true));
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kCommit);
  EXPECT_FALSE(t.outcome->fast_path());
  // Falling back to the slow path re-uses votes already in hand; nothing was
  // re-sent to the same replica, so it is not counted as a retransmission.
  EXPECT_EQ(t.outcome->retransmits, 0u);
}

TEST(CommitCoordinatorTest, RetryExhaustionFails) {
  RetryPolicy retry = RetryPolicy::WithTimeout(1000);
  retry.max_attempts = 5;
  CoordinatorUnderTest t(retry);
  for (uint32_t i = 0; i <= retry.max_attempts; i++) {
    ASSERT_FALSE(t.coordinator->done()) << "failed early at retry " << i;
    t.coordinator->OnTimer(100 + CommitCoordinator::kValidatePhaseTimer);
  }
  ASSERT_TRUE(t.coordinator->done());
  EXPECT_EQ(t.outcome->result, TxnResult::kFailed);
  EXPECT_EQ(t.outcome->reason, AbortReason::kNoQuorum);
  EXPECT_EQ(t.outcome->retransmits, retry.max_attempts);
}

TEST(CommitCoordinatorTest, ForcedSlowPathSkipsFastQuorum) {
  CapturingTransport transport;
  std::optional<CommitOutcome> outcome;
  CommitCoordinator coordinator(
      &transport, Address::Client(1), kQ3, 0, kTid, kTs, {}, {{{"k"}, {"v"}}},
      RetryPolicy::Disabled(), 100, [&outcome](const CommitOutcome& o) { outcome = o; });
  coordinator.set_force_slow_path(true);
  coordinator.Start();
  for (ReplicaId r = 0; r < 3; r++) {
    coordinator.OnMessage(ValidateReplyMsg(r, TxnStatus::kValidatedOk));
  }
  EXPECT_FALSE(coordinator.done());  // Needs the ACCEPT round.
  EXPECT_EQ(transport.Count<AcceptRequest>(), 3u);
  coordinator.OnMessage(AcceptReplyMsg(0, true));
  coordinator.OnMessage(AcceptReplyMsg(1, true));
  ASSERT_TRUE(coordinator.done());
  EXPECT_FALSE(outcome->fast_path());
}

TEST(CommitCoordinatorTest, DeferredModeWithholdsDecisionBroadcast) {
  CapturingTransport transport;
  CommitCoordinator coordinator(&transport, Address::Client(1), kQ3, 0, kTid, kTs, {},
                                {{{"k"}, {"v"}}}, RetryPolicy::Disabled(), 100, nullptr);
  coordinator.set_defer_decision(true);
  coordinator.Start();
  for (ReplicaId r = 0; r < 3; r++) {
    coordinator.OnMessage(ValidateReplyMsg(r, TxnStatus::kValidatedOk));
  }
  ASSERT_TRUE(coordinator.done());
  EXPECT_EQ(coordinator.outcome().result, TxnResult::kCommit);
  EXPECT_EQ(transport.Count<CommitRequest>(), 0u);  // Withheld.
  coordinator.BroadcastFinal(false);  // Parent says another shard aborted.
  EXPECT_EQ(transport.Count<CommitRequest>(), 3u);
  EXPECT_FALSE(transport.Last<CommitRequest>()->commit);
}

TEST(BackupCoordinatorTest, RebidsAboveCompetingView) {
  CapturingTransport transport;
  std::optional<CommitOutcome> outcome;
  BackupCoordinator backup(&transport, Address::Client(1), kQ3, 0, kTid, /*view=*/1,
                           RetryPolicy::Disabled(), /*timer_base=*/0,
                           [&outcome](const CommitOutcome& o) { outcome = o; });
  backup.Start();
  EXPECT_EQ(transport.Count<CoordChangeRequest>(), 3u);
  EXPECT_EQ(transport.Last<CoordChangeRequest>()->view, 1u);

  // A replica reports it already promised view 4: re-prepare at view 5.
  Message nack;
  nack.src = Address::Replica(0);
  CoordChangeAck ack;
  ack.tid = kTid;
  ack.view = 4;
  ack.ok = false;
  ack.from = 0;
  nack.payload = ack;
  backup.OnMessage(nack);
  EXPECT_EQ(transport.Count<CoordChangeRequest>(), 6u);
  EXPECT_EQ(transport.Last<CoordChangeRequest>()->view, 5u);
}

TEST(BackupCoordinatorTest, GroupBaseAddressesCorrectShard) {
  CapturingTransport transport;
  CommitCoordinator coordinator(&transport, Address::Client(1), kQ3, 0, kTid, kTs, {},
                                {{{"k"}, {"v"}}}, RetryPolicy::Disabled(), 100, nullptr);
  coordinator.set_group_base(6);  // Shard 2 of an n=3 sharded deployment.
  coordinator.Start();
  for (const Message& msg : transport.sent) {
    EXPECT_GE(msg.dst.id, 6u);
    EXPECT_LE(msg.dst.id, 8u);
  }
}

}  // namespace
}  // namespace meerkat
