// Tests for the public API layer: the system factory and the blocking client
// (threaded runtime).

#include <gtest/gtest.h>

#include <thread>

#include "src/api/blocking_client.h"
#include "tests/test_util.h"

namespace meerkat {
namespace {

TEST(SystemFactoryTest, BuildsEveryKind) {
  for (SystemKind kind : {SystemKind::kMeerkat, SystemKind::kMeerkatPb, SystemKind::kTapir,
                          SystemKind::kKuaFu}) {
    SimHarness h(DefaultOptions(kind));
    EXPECT_EQ(h.system().kind(), kind);
    h.system().Load("k", "v");
    for (ReplicaId r = 0; r < 3; r++) {
      ReadResult read = h.system().ReadAtReplica(r, "k");
      ASSERT_TRUE(read.found);
      EXPECT_EQ(read.value, "v");
    }
  }
}

TEST(SystemFactoryTest, ToStringNames) {
  EXPECT_STREQ(ToString(SystemKind::kMeerkat), "MEERKAT");
  EXPECT_STREQ(ToString(SystemKind::kMeerkatPb), "MEERKAT-PB");
  EXPECT_STREQ(ToString(SystemKind::kTapir), "TAPIR");
  EXPECT_STREQ(ToString(SystemKind::kKuaFu), "KuaFu++");
}

class BlockingClientTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(BlockingClientTest, GetPutRoundTrip) {
  SystemOptions options = DefaultOptions(GetParam());
  options.retry = RetryPolicy::WithTimeout(5'000'000);
  ThreadedHarness h(options);
  BlockingClient client(h.system(), 1);

  EXPECT_FALSE(client.Get("missing").has_value());
  TxnOutcome put = client.Put("k", "v1");
  EXPECT_EQ(put.result, TxnResult::kCommit);
  EXPECT_TRUE(put.committed());
  EXPECT_NE(put.path, CommitPath::kNone);
  EXPECT_EQ(put.reason, AbortReason::kNone);
  EXPECT_EQ(client.Get("k").value_or(""), "v1");
}

TEST_P(BlockingClientTest, TransformRmw) {
  SystemOptions options = DefaultOptions(GetParam());
  options.retry = RetryPolicy::WithTimeout(5'000'000);
  ThreadedHarness h(options);
  h.system().Load("counter", "10");
  BlockingClient client(h.system(), 1);

  TxnPlan increment;
  increment.ops.push_back(Op::RmwFn("counter", [](const std::string& v) {
    return std::to_string(std::stoi(v) + 5);
  }));
  TxnOutcome outcome = client.ExecuteWithRetry(increment);
  EXPECT_EQ(outcome.result, TxnResult::kCommit);
  EXPECT_GE(outcome.attempts, 1u);
  EXPECT_EQ(client.Get("counter").value_or(""), "15");
}

TEST_P(BlockingClientTest, ConcurrentClientsMakeProgress) {
  SystemOptions options = DefaultOptions(GetParam());
  options.retry = RetryPolicy::WithTimeout(5'000'000);
  ThreadedHarness h(options);
  h.system().Load("shared", "0");

  std::vector<std::thread> threads;
  std::atomic<int> commits{0};
  for (int c = 0; c < 3; c++) {
    threads.emplace_back([&, c] {
      BlockingClient client(h.system(), static_cast<uint32_t>(c + 1), static_cast<uint64_t>(c));
      for (int i = 0; i < 20; i++) {
        TxnPlan plan;
        plan.ops.push_back(Op::RmwFn("shared", [](const std::string& v) {
          return std::to_string(std::stoll(v) + 1);
        }));
        if (client.ExecuteWithRetry(plan).committed()) {
          commits.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(commits.load(), 60);
  BlockingClient reader(h.system(), 9);
  // Every increment is serialized: the final value equals the commit count.
  EXPECT_EQ(reader.Get("shared").value_or(""), "60");
}

INSTANTIATE_TEST_SUITE_P(AllSystems, BlockingClientTest,
                         ::testing::Values(SystemKind::kMeerkat, SystemKind::kMeerkatPb,
                                           SystemKind::kTapir, SystemKind::kKuaFu),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           switch (info.param) {
                             case SystemKind::kMeerkat:
                               return "Meerkat";
                             case SystemKind::kMeerkatPb:
                               return "MeerkatPB";
                             case SystemKind::kTapir:
                               return "Tapir";
                             case SystemKind::kKuaFu:
                               return "KuaFu";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace meerkat
