// The paper's headline evaluation claims, encoded as fast regression tests
// over small simulator runs. These are the guardrails that keep future
// changes from silently breaking the reproduced phenomena; the full-scale
// versions live in bench/ (see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include "bench/harness.h"

namespace meerkat {
namespace {

BenchOptions QuickOpt() {
  BenchOptions opt;
  opt.measure_ms = 6;
  opt.warmup_ms = 2;
  opt.clients_per_thread = 8;
  return opt;
}

TEST(EvaluationShapeTest, MeerkatScalesWithThreadsOnYcsb) {
  BenchOptions opt = QuickOpt();
  double at8 = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 8, 0.0, opt).goodput_mtps;
  double at32 = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 32, 0.0, opt).goodput_mtps;
  // Paper §6.3: Meerkat keeps scaling; expect at least 3x from 4x threads.
  EXPECT_GT(at32, at8 * 3.0) << "at8=" << at8 << " at32=" << at32;
}

TEST(EvaluationShapeTest, NonZcpSystemsBottleneckEarly) {
  BenchOptions opt = QuickOpt();
  // Paper §6.3: KuaFu++ and TAPIR stop scaling by ~6-8 threads; by 16->48
  // threads their throughput is flat.
  for (SystemKind kind : {SystemKind::kKuaFu, SystemKind::kTapir}) {
    double at16 = RunPoint(kind, WorkloadKind::kYcsbT, 16, 0.0, opt).goodput_mtps;
    double at48 = RunPoint(kind, WorkloadKind::kYcsbT, 48, 0.0, opt).goodput_mtps;
    EXPECT_LT(at48, at16 * 1.25) << ToString(kind) << " kept scaling: " << at16 << " -> "
                                 << at48;
  }
}

TEST(EvaluationShapeTest, SystemOrderingAtScaleMatchesFigure4) {
  BenchOptions opt = QuickOpt();
  double meerkat = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 48, 0.0, opt).goodput_mtps;
  double pb = RunPoint(SystemKind::kMeerkatPb, WorkloadKind::kYcsbT, 48, 0.0, opt).goodput_mtps;
  double tapir = RunPoint(SystemKind::kTapir, WorkloadKind::kYcsbT, 48, 0.0, opt).goodput_mtps;
  double kuafu = RunPoint(SystemKind::kKuaFu, WorkloadKind::kYcsbT, 48, 0.0, opt).goodput_mtps;
  // MEERKAT > MEERKAT-PB > TAPIR > KuaFu++ at 48 threads (paper Fig. 4).
  EXPECT_GT(meerkat, pb);
  EXPECT_GT(pb, tapir * 2);
  EXPECT_GT(tapir, kuafu);
  // And the headline gap is an order of magnitude.
  EXPECT_GT(meerkat, kuafu * 8);
}

TEST(EvaluationShapeTest, HighContentionFavorsPrimaryBackup) {
  // Paper §6.5 / Fig. 6a: Meerkat leads at low skew; at very high skew the
  // decentralized OCC's extra aborts hand the win to Meerkat-PB.
  BenchOptions opt = QuickOpt();
  opt.measure_ms = 8;
  const size_t kThreads = 32;
  double meerkat_low = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, kThreads, 0.0, opt)
                           .goodput_mtps;
  double pb_low = RunPoint(SystemKind::kMeerkatPb, WorkloadKind::kYcsbT, kThreads, 0.0, opt)
                      .goodput_mtps;
  EXPECT_GT(meerkat_low, pb_low);

  PointResult meerkat_high =
      RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, kThreads, 1.1, opt);
  PointResult pb_high =
      RunPoint(SystemKind::kMeerkatPb, WorkloadKind::kYcsbT, kThreads, 1.1, opt);
  EXPECT_GT(pb_high.goodput_mtps, meerkat_high.goodput_mtps)
      << "meerkat=" << meerkat_high.goodput_mtps << " pb=" << pb_high.goodput_mtps;
  // And the mechanism is the abort rate (Fig. 7a).
  EXPECT_GT(meerkat_high.abort_rate, pb_high.abort_rate);
}

TEST(EvaluationShapeTest, AbortRatesClimbWithSkew) {
  BenchOptions opt = QuickOpt();
  PointResult low = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 16, 0.0, opt);
  PointResult high = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 16, 0.95, opt);
  EXPECT_LT(low.abort_rate, 0.02);
  EXPECT_GT(high.abort_rate, low.abort_rate * 3);
}

TEST(EvaluationShapeTest, FastPathDominatesUncontendedRuns) {
  BenchOptions opt = QuickOpt();
  PointResult p = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 16, 0.0, opt);
  EXPECT_GT(p.fast_path_fraction, 0.95);
}

TEST(EvaluationShapeTest, RetwisThroughputBelowYcsb) {
  // Paper §6.4: longer transactions -> lower absolute throughput everywhere.
  BenchOptions opt = QuickOpt();
  double ycsb = RunPoint(SystemKind::kMeerkat, WorkloadKind::kYcsbT, 16, 0.0, opt).goodput_mtps;
  double retwis = RunPoint(SystemKind::kMeerkat, WorkloadKind::kRetwis, 16, 0.0, opt).goodput_mtps;
  EXPECT_GT(ycsb, retwis * 1.5);
}

}  // namespace
}  // namespace meerkat
