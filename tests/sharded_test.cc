// Distributed-transaction tests (paper §5.2.4): multi-shard atomicity,
// cross-shard abort propagation, and cross-shard serializability.

#include <gtest/gtest.h>

#include <optional>

#include "src/protocol/sharded.h"
#include "src/sim/sim_time_source.h"
#include "src/sim/simulator.h"
#include "src/transport/sim_transport.h"
#include "tests/serializability_checker.h"

namespace meerkat {
namespace {

class ShardedFixture : public ::testing::Test {
 protected:
  ShardedFixture() : sim_(CostModel{}), transport_(&sim_), time_source_(&sim_) {
    ShardedOptions options;
    options.num_shards = 3;
    options.system.quorum = QuorumConfig::ForReplicas(3);
    options.system.cores_per_replica = 2;
    cluster_ = std::make_unique<ShardedCluster>(options, &transport_);
  }

  std::unique_ptr<ShardedSession> MakeSession(uint32_t client_id, uint64_t seed = 1) {
    return std::make_unique<ShardedSession>(client_id, &transport_, &time_source_,
                                            cluster_.get(), seed);
  }

  TxnResult RunTxn(ShardedSession& session, TxnPlan plan) {
    std::optional<TxnResult> result;
    SimActor* actor = transport_.ActorFor(Address::Client(session.client_id()), 0);
    sim_.Schedule(sim_.now() + 1, actor, [&](SimContext&) {
      session.ExecuteAsync(std::move(plan),
                           [&result](const TxnOutcome& o) { result = o.result; });
    });
    sim_.Run();
    return result.value_or(TxnResult::kFailed);
  }

  // Committed value visible at every replica of the key's shard (asserts
  // convergence); empty if absent.
  std::string CommittedValue(const std::string& key) {
    size_t shard = cluster_->ShardForKey(key);
    ReadResult first = cluster_->ReadAt(shard, 0, key);
    for (ReplicaId r = 1; r < 3; r++) {
      ReadResult other = cluster_->ReadAt(shard, r, key);
      EXPECT_EQ(first.found, other.found) << key << " replica " << r;
      EXPECT_EQ(first.value, other.value) << key << " replica " << r;
    }
    return first.found ? first.value : std::string();
  }

  // Two keys guaranteed to live on different shards.
  std::pair<std::string, std::string> CrossShardKeys() {
    std::string a = "key-a";
    for (int i = 0; i < 1000; i++) {
      std::string b = "key-b" + std::to_string(i);
      if (cluster_->ShardForKey(b) != cluster_->ShardForKey(a)) {
        return {a, b};
      }
    }
    ADD_FAILURE() << "could not find cross-shard keys";
    return {a, a};
  }

  Simulator sim_;
  SimTransport transport_;
  SimTimeSource time_source_;
  std::unique_ptr<ShardedCluster> cluster_;
};

TEST_F(ShardedFixture, SingleShardTxnCommits) {
  cluster_->Load("k", "v0");
  auto session = MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "v1"));
  EXPECT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  EXPECT_EQ(session->last_shard_count(), 1u);
  EXPECT_EQ(CommittedValue("k"), "v1");
}

TEST_F(ShardedFixture, CrossShardTxnCommitsAtomically) {
  auto [a, b] = CrossShardKeys();
  cluster_->Load(a, "a0");
  cluster_->Load(b, "b0");
  auto session = MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw(a, "a1"));
  plan.ops.push_back(Op::Rmw(b, "b1"));
  EXPECT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  EXPECT_EQ(session->last_shard_count(), 2u);
  EXPECT_EQ(CommittedValue(a), "a1");
  EXPECT_EQ(CommittedValue(b), "b1");
}

TEST_F(ShardedFixture, OneShardAbortAbortsWholeTxn) {
  auto [a, b] = CrossShardKeys();
  cluster_->Load(a, "a0");
  cluster_->Load(b, "b0");

  // Poison shard(b): install a newer committed version of b so a transaction
  // holding a stale read of b must fail validation there.
  size_t shard_b = cluster_->ShardForKey(b);
  Timestamp stale_version = cluster_->ReadAt(shard_b, 0, b).wts;
  for (ReplicaId r = 0; r < 3; r++) {
    cluster_->replica(shard_b, r)->LoadKey(b, "b-newer", Timestamp{500, 9});
  }

  auto session = MakeSession(1);
  std::optional<TxnResult> result;
  SimActor* actor = transport_.ActorFor(Address::Client(1), 0);
  // Issue through the normal path but with the poisoned read already in
  // place: the session reads b-newer... so instead poison *after* the reads
  // by interleaving another writer. Simpler deterministic route: use two
  // sessions — s2 overwrites b between s1's read and s1's commit. The
  // simulator's event order makes this deterministic: s1's reads complete
  // before s2 starts only if s2 is scheduled later with time separation
  // larger than a read round-trip.
  auto writer = MakeSession(2, 7);
  TxnPlan s1_plan;
  s1_plan.ops.push_back(Op::Rmw(a, "a1"));
  s1_plan.ops.push_back(Op::Rmw(b, "b1"));
  (void)stale_version;
  sim_.Schedule(1, actor, [&](SimContext&) {
    session->ExecuteAsync(s1_plan, [&result](const TxnOutcome& o) { result = o.result; });
  });
  // s1's two reads take ~2 round trips (~10-12us with default costs); inject
  // the conflicting single-shard write right in between s1's commit window by
  // starting it after the reads will have finished but its commit lands
  // first... both orders produce a conflict on b; either s1 or the writer
  // aborts, never half of s1.
  SimActor* writer_actor = transport_.ActorFor(Address::Client(2), 0);
  std::optional<TxnResult> writer_result;
  TxnPlan w_plan;
  w_plan.ops.push_back(Op::Rmw(b, "b-overwrite"));
  sim_.Schedule(2, writer_actor, [&](SimContext&) {
    writer->ExecuteAsync(w_plan,
                         [&writer_result](const TxnOutcome& o) { writer_result = o.result; });
  });
  sim_.Run();

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(writer_result.has_value());
  // Atomicity: if s1 aborted, *neither* of its writes may be visible — in
  // particular shard(a) must have backed out even though shard(a) voted OK.
  if (*result == TxnResult::kAbort) {
    EXPECT_EQ(CommittedValue(a), "a0");
  } else {
    EXPECT_EQ(*result, TxnResult::kCommit);
    EXPECT_EQ(CommittedValue(a), "a1");
  }
}

TEST_F(ShardedFixture, CrossShardHistoryIsSerializable) {
  // Many clients doing cross-shard RMW pairs over a small keyspace.
  std::vector<std::string> keys;
  for (int i = 0; i < 12; i++) {
    keys.push_back("k" + std::to_string(i));
  }
  SerializabilityChecker checker;
  for (const std::string& key : keys) {
    cluster_->Load(key, "0");
    checker.RecordLoadedKey(key);
  }

  struct Loop {
    ShardedSession* session;
    Rng rng{0};
    std::vector<std::string>* keys;
    SerializabilityChecker* checker;
    void Next() {
      TxnPlan plan;
      std::string k1 = (*keys)[rng.NextBounded(keys->size())];
      std::string k2 = (*keys)[rng.NextBounded(keys->size())];
      plan.ops.push_back(Op::Rmw(k1, "v" + std::to_string(rng.Next() % 1000)));
      if (k2 != k1) {
        plan.ops.push_back(Op::Rmw(k2, "v" + std::to_string(rng.Next() % 1000)));
      }
      session->ExecuteAsync(plan, [this](const TxnOutcome& outcome) {
        if (outcome.committed()) {
          checker->RecordCommit(*session);
        }
        Next();
      });
    }
  };

  std::vector<std::unique_ptr<ShardedSession>> sessions;
  std::vector<std::unique_ptr<Loop>> loops;
  transport_.faults().SetMaxExtraDelay(3000);  // Reorder across replicas.
  for (uint32_t c = 1; c <= 16; c++) {
    sessions.push_back(MakeSession(c, c * 1237));
    auto loop = std::make_unique<Loop>();
    loop->session = sessions.back().get();
    loop->rng.Seed(c * 31 + 5);
    loop->keys = &keys;
    loop->checker = &checker;
    Loop* raw = loop.get();
    sim_.Schedule(c * 50, transport_.ActorFor(Address::Client(c), 0),
                  [raw](SimContext&) { raw->Next(); });
    loops.push_back(std::move(loop));
  }
  sim_.Run(15'000'000);  // 15 ms of virtual time.
  sim_.Clear();

  ASSERT_GT(checker.CommittedCount(), 100u);
  std::vector<std::string> violations = checker.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(violations.empty());
}

}  // namespace
}  // namespace meerkat
