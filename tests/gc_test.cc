// Online watermark GC (DESIGN.md §12): budgeted TrimStep mechanics, the
// per-core watermark fold from piggybacked oldest-inflight stamps, the
// trimmed-duplicate answer branches (retransmitted VALIDATE/COMMIT for
// already-trimmed transactions), the orphan sweep driving cooperative
// termination, and a simulator soak showing the trecord stays bounded.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/dap_check.h"
#include "src/protocol/replica.h"
#include "src/protocol/session.h"
#include "src/sim/sim_time_source.h"
#include "src/transport/sim_transport.h"

namespace meerkat {
namespace {

// --- TrimStep unit tests (bare partition) ---------------------------------

TxnRecord& AddRecord(TRecordPartition& part, TxnId tid, Timestamp ts, TxnStatus status) {
  TxnRecord& rec = part.GetOrCreate(tid);
  rec.ts = ts;
  rec.status = status;
  return rec;
}

TEST(TrimStepTest, TrimsOnlyFinalizedStrictlyBelow) {
  TRecord trecord(1);
  TRecordPartition& part = trecord.Partition(0);
  AddRecord(part, {1, 1}, {10, 1}, TxnStatus::kCommitted);  // Below: trimmed.
  AddRecord(part, {1, 2}, {20, 1}, TxnStatus::kAborted);    // At W: kept (strict).
  AddRecord(part, {1, 3}, {30, 1}, TxnStatus::kCommitted);  // Above: kept.
  AddRecord(part, {1, 4}, {5, 1}, TxnStatus::kValidatedOk);  // Below but live: kept.

  size_t cursor = 0;
  auto res = part.TrimStep(Timestamp{20, 1}, /*budget=*/100, &cursor);
  EXPECT_EQ(res.trimmed, 1u);
  EXPECT_TRUE(res.wrapped);
  EXPECT_EQ(part.Find({1, 1}), nullptr);
  EXPECT_NE(part.Find({1, 2}), nullptr);
  EXPECT_NE(part.Find({1, 3}), nullptr);
  EXPECT_NE(part.Find({1, 4}), nullptr);
}

TEST(TrimStepTest, InvalidWatermarkIsANoop) {
  TRecord trecord(1);
  TRecordPartition& part = trecord.Partition(0);
  AddRecord(part, {1, 1}, {10, 1}, TxnStatus::kCommitted);
  size_t cursor = 0;
  auto res = part.TrimStep(Timestamp{}, /*budget=*/100, &cursor);
  EXPECT_EQ(res.trimmed, 0u);
  EXPECT_EQ(part.Size(), 1u);
}

TEST(TrimStepTest, BudgetBoundsEachStepAndCursorResumes) {
  TRecord trecord(1);
  TRecordPartition& part = trecord.Partition(0);
  constexpr size_t kRecords = 256;
  for (uint32_t i = 0; i < kRecords; i++) {
    AddRecord(part, {1, i + 1}, {100 + i, 1}, TxnStatus::kCommitted);
  }
  // Everything is below the watermark; a budget of 16 needs many steps but
  // each one must stay within its slice.
  size_t cursor = 0;
  size_t steps = 0;
  while (part.Size() > 0 && steps < 1000) {
    auto res = part.TrimStep(Timestamp{100 + kRecords, 1}, /*budget=*/16, &cursor);
    // A step may overshoot its budget only by finishing its last bucket.
    EXPECT_LE(res.scanned, 64u) << "budget overshot at step " << steps;
    steps++;
  }
  EXPECT_EQ(part.Size(), 0u);
  EXPECT_GE(steps, kRecords / 64) << "budget was not actually bounding the steps";
}

TEST(TrimStepTest, ReportsOrphansWithoutTrimmingThem) {
  TRecord trecord(1);
  TRecordPartition& part = trecord.Partition(0);
  AddRecord(part, {7, 1}, {10, 7}, TxnStatus::kValidatedOk);  // Stuck: orphan.
  TxnRecord& promoted = AddRecord(part, {7, 2}, {15, 7}, TxnStatus::kAcceptCommit);
  promoted.view = 3;  // The sweep must report the record's current view.
  AddRecord(part, {7, 3}, {95, 7}, TxnStatus::kValidatedOk);  // Above grace: live.
  AddRecord(part, {7, 4}, {10, 8}, TxnStatus::kCommitted);    // Final: trim, not orphan.

  size_t cursor = 0;
  std::vector<std::pair<TxnId, ViewNum>> orphans;
  auto res = part.TrimStep(Timestamp{100, 0}, /*budget=*/100, &cursor,
                           /*orphan_below=*/Timestamp{90, 0}, &orphans);
  EXPECT_EQ(res.trimmed, 1u);
  ASSERT_EQ(orphans.size(), 2u);
  // Orphans are reported but never erased: only consensus finalizes them.
  EXPECT_NE(part.Find({7, 1}), nullptr);
  EXPECT_NE(part.Find({7, 2}), nullptr);
  bool saw_promoted = false;
  for (const auto& [tid, view] : orphans) {
    if (tid == (TxnId{7, 2})) {
      saw_promoted = true;
      EXPECT_EQ(view, 3u);
    }
  }
  EXPECT_TRUE(saw_promoted);
}

// --- Replica watermark behaviour (loopback, single replica) ---------------

class LoopbackTransport : public Transport {
 public:
  void RegisterReplica(ReplicaId, CoreId core, TransportReceiver* receiver) override {
    if (receivers_.size() <= core) {
      receivers_.resize(core + 1);
    }
    receivers_[core] = receiver;
  }
  void RegisterClient(uint32_t, TransportReceiver*) override {}
  void UnregisterClient(uint32_t) override {}
  void SetTimer(const Address&, CoreId, uint64_t, uint64_t) override {}
  void Send(Message msg) override { sent.push_back(std::move(msg)); }

  void Inject(CoreId core, Message msg) { receivers_[core]->Receive(std::move(msg)); }

  template <typename T>
  const T* LastReply() const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (const T* p = std::get_if<T>(&it->payload)) {
        return p;
      }
    }
    return nullptr;
  }

  std::vector<Message> sent;

 private:
  std::vector<TransportReceiver*> receivers_;
};

class GcReplicaFixture : public ::testing::Test {
 protected:
  GcReplicaFixture() {
    // Aggressive GC so every injected message is followed by a trim step.
    replica_ = std::make_unique<MeerkatReplica>(
        0, QuorumConfig::ForReplicas(3), 2, &transport_, /*group_base=*/0, RetryPolicy(),
        OverloadOptions(),
        GcOptions().WithIntervalDispatches(1).WithTrimBudget(256).WithMaxTrackedClients(4));
    replica_->LoadKey("k", "v0", Timestamp{1, 0});
  }

  Message From(uint32_t client, CoreId core, Payload payload) {
    Message msg;
    msg.src = Address::Client(client);
    msg.dst = Address::Replica(0);
    msg.core = core;
    msg.payload = std::move(payload);
    return msg;
  }

  ValidateRequest Validate(TxnId tid, Timestamp ts, Timestamp mark) {
    ValidateRequest req{tid, ts, {{"k", Timestamp{1, 0}}}, {{"k", "v" + std::to_string(ts.time)}}};
    req.oldest_inflight = mark;
    return req;
  }

  // One full fast-path transaction on core 0, stamped with its own ts as the
  // oldest-inflight mark (exactly what MeerkatSession now sends).
  void RunTxn(TxnId tid, Timestamp ts) {
    transport_.Inject(0, From(tid.client_id, 0, Validate(tid, ts, ts)));
    transport_.Inject(0, From(tid.client_id, 0, CommitRequest{tid, true, ts, ts}));
  }

  LoopbackTransport transport_;
  std::unique_ptr<MeerkatReplica> replica_;
};

TEST_F(GcReplicaFixture, WatermarkAdvancesFromStampsAndTrims) {
  RunTxn({1, 1}, {10, 1});
  EXPECT_EQ(replica_->core_watermark(0), (Timestamp{10, 1}));
  // Nothing strictly below the watermark yet.
  EXPECT_NE(replica_->trecord().Partition(0).Find({1, 1}), nullptr);

  RunTxn({1, 2}, {20, 1});
  EXPECT_EQ(replica_->core_watermark(0), (Timestamp{20, 1}));
  // The first transaction fell strictly below the new watermark: trimmed.
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);
  // The stamping client's own transaction sits AT the watermark: kept.
  EXPECT_NE(replica_->trecord().Partition(0).Find({1, 2}), nullptr);
  EXPECT_GE(replica_->gc_trim_passes(), 1u);
}

TEST_F(GcReplicaFixture, DuplicateValidateAfterTrimIsAnsweredAbortWithoutARecord) {
  RunTxn({1, 1}, {10, 1});
  RunTxn({1, 2}, {20, 1});
  ASSERT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);

  KeyEntry* entry = replica_->store().Find("k");
  size_t readers_before = entry->readers.size();

  // A straggling retransmission of the trimmed transaction's VALIDATE.
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {10, 1}, Timestamp{})));
  const ValidateReply* reply = transport_.LastReply<ValidateReply>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->tid, (TxnId{1, 1}));
  EXPECT_EQ(reply->status, TxnStatus::kValidatedAbort);
  // Answered from the watermark: no record resurrected, no OCC registration.
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);
  EXPECT_EQ(entry->readers.size(), readers_before);
}

TEST_F(GcReplicaFixture, StaleCommitForTrimmedTransactionIsDropped) {
  RunTxn({1, 1}, {10, 1});
  RunTxn({1, 2}, {20, 1});
  ASSERT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);

  std::string value = replica_->store().Read("k").value;
  // A straggling retransmission of the trimmed transaction's COMMIT. Without
  // the watermark check this resurrected the record forever (the unbounded-
  // growth bug).
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, true, {10, 1}, Timestamp{}}));
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);
  // The store is untouched: its value was already installed (Thomas rule
  // would make a re-install idempotent anyway, but the drop never reaches it).
  EXPECT_EQ(replica_->store().Read("k").value, value);
}

TEST_F(GcReplicaFixture, CommitAboveWatermarkStillCreatesAndAdoptsStampedTs) {
  RunTxn({1, 1}, {10, 1});
  // COMMIT for a transaction this replica never validated, above W: must be
  // processed (the replica missed the VALIDATE, not the other way around),
  // and the record must adopt the stamped ts so it stays trimmable.
  transport_.Inject(0, From(2, 0, CommitRequest{{2, 1}, true, {30, 2}, {30, 2}}));
  TxnRecord* rec = replica_->trecord().Partition(0).Find({2, 1});
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->status, TxnStatus::kCommitted);
  EXPECT_EQ(rec->ts, (Timestamp{30, 2}));

  // Advance the watermark past it: the adopted ts makes it trimmable.
  RunTxn({1, 2}, {50, 1});
  transport_.Inject(0, From(2, 0, Validate({2, 2}, {60, 2}, {60, 2})));
  EXPECT_EQ(replica_->trecord().Partition(0).Find({2, 1}), nullptr);
}

TEST_F(GcReplicaFixture, WatermarkIsMonotoneUnderMarkRegression) {
  RunTxn({1, 1}, {10, 1});
  RunTxn({1, 2}, {20, 1});
  ASSERT_EQ(replica_->core_watermark(0), (Timestamp{20, 1}));

  // A reordered (older) stamp from the same client arrives late: the
  // published watermark must not regress — records below it are gone.
  transport_.Inject(0, From(1, 0, Validate({1, 9}, {25, 1}, {15, 1})));
  EXPECT_EQ(replica_->core_watermark(0), (Timestamp{20, 1}));
}

TEST_F(GcReplicaFixture, WatermarksAreIndependentPerCore) {
  RunTxn({1, 1}, {10, 1});
  RunTxn({1, 2}, {20, 1});
  EXPECT_EQ(replica_->core_watermark(0), (Timestamp{20, 1}));
  // Core 1 saw no traffic: its watermark must still be invalid (no trim).
  EXPECT_FALSE(replica_->core_watermark(1).Valid());
}

TEST_F(GcReplicaFixture, FullClientTableDropsMarksConservatively) {
  // Capacity 4: clients 1..4 tracked, 5 and 6 dropped.
  for (uint32_t c = 1; c <= 6; c++) {
    transport_.Inject(
        0, From(c, 0, Validate({c, 1}, {100 * c, c}, Timestamp{100 * c, c})));
  }
  // The fold sees only the tracked clients; dropped marks never advance W
  // past anyone (W = min of tracked = client 1's mark).
  EXPECT_EQ(replica_->core_watermark(0), (Timestamp{100, 1}));
}

TEST_F(GcReplicaFixture, CrashRestartResetsWatermark) {
  RunTxn({1, 1}, {10, 1});
  RunTxn({1, 2}, {20, 1});
  ASSERT_TRUE(replica_->core_watermark(0).Valid());
  replica_->CrashAndRestart();
  EXPECT_FALSE(replica_->core_watermark(0).Valid());
}

// --- Orphan sweep drives cooperative termination (simulator) --------------

class GcOrphanFixture : public ::testing::Test {
 protected:
  GcOrphanFixture() : sim_(CostModel{}), transport_(&sim_) {
    for (ReplicaId r = 0; r < 3; r++) {
      // Only replica 1 runs the sweep, so exactly one backup coordinator
      // contends for the orphan (the multi-host case is arbitrated by views
      // and covered by the protocol tests).
      GcOptions gc = r == 1 ? GcOptions().WithIntervalDispatches(1).WithOrphanGrace(100)
                            : GcOptions().WithEnabled(false);
      replicas_.push_back(std::make_unique<MeerkatReplica>(
          r, QuorumConfig::ForReplicas(3), 2, &transport_, /*group_base=*/0, RetryPolicy(),
          OverloadOptions(), gc));
      replicas_.back()->LoadKey("k", "v0", Timestamp{1, 0});
      replicas_.back()->LoadKey("w", "w0", Timestamp{1, 0});
    }
    transport_.RegisterClient(99, &sink_);
    transport_.RegisterClient(98, &sink_);
  }

  void Broadcast(uint32_t client, Payload payload) {
    SimActor* actor = transport_.ActorFor(Address::Client(client), 0);
    sim_.Schedule(sim_.now() + 1, actor, [this, client, payload](SimContext&) {
      for (ReplicaId r = 0; r < 3; r++) {
        Message msg;
        msg.src = Address::Client(client);
        msg.dst = Address::Replica(r);
        msg.core = 0;
        msg.payload = payload;
        transport_.Send(std::move(msg));
      }
    });
    sim_.Run();
  }

  struct Sink : TransportReceiver {
    void Receive(Message&&) override {}
  };

  Simulator sim_;
  SimTransport transport_;
  Sink sink_;
  std::vector<std::unique_ptr<MeerkatReplica>> replicas_;
};

TEST_F(GcOrphanFixture, SweepRecoversOrphanAndClearsPendingRegistrations) {
  // Validate everywhere, then abandon (coordinator "crash" before deciding):
  // the orphan holds pending reader/writer registrations on "k".
  TxnId orphan{99, 1};
  Broadcast(99, ValidateRequest{orphan, {1000, 99}, {{"k", Timestamp{1, 0}}}, {{"k", "orphan"}}});
  ASSERT_EQ(replicas_[1]->trecord().Partition(0).Find(orphan)->status, TxnStatus::kValidatedOk);
  ASSERT_GT(replicas_[1]->store().PendingCountForTesting(), 0u);

  // Fresh traffic from a live client pushes replica 1's watermark far past
  // the orphan (+grace); its GC sweep must start cooperative termination.
  TxnId fresh{98, 1};
  ValidateRequest v{fresh, {2000, 98}, {{"w", Timestamp{1, 0}}}, {{"w", "w1"}}};
  v.oldest_inflight = Timestamp{2000, 98};
  Broadcast(98, v);
  Broadcast(98, CommitRequest{fresh, true, {2000, 98}, {2000, 98}});
  sim_.Run();

  // The orphan was VALIDATED-OK at a majority: cooperative termination must
  // commit it everywhere, finalization clears the vstore registrations, and
  // the hosted backup retires. On replica 1 the record may then be trimmed.
  for (ReplicaId r = 0; r < 3; r++) {
    TxnRecord* rec = replicas_[r]->trecord().Partition(0).Find(orphan);
    if (rec != nullptr) {
      EXPECT_EQ(rec->status, TxnStatus::kCommitted) << "replica " << r;
    } else {
      EXPECT_EQ(r, 1) << "only the trimming replica may have erased it";
    }
    EXPECT_EQ(replicas_[r]->store().Read("k").value, "orphan") << "replica " << r;
    EXPECT_EQ(replicas_[r]->store().PendingCountForTesting(), 0u) << "replica " << r;
  }
  EXPECT_EQ(replicas_[1]->hosted_backup_count(), 0u);
}

TEST_F(GcOrphanFixture, LiveTransactionsInsideGraceAreLeftAlone) {
  TxnId inflight{99, 1};
  Broadcast(99, ValidateRequest{inflight, {1990, 99}, {{"k", Timestamp{1, 0}}}, {{"k", "x"}}});

  // Watermark 2000, grace 100: the 1990 transaction is inside the grace
  // window — a live coordinator may still be driving it.
  TxnId fresh{98, 1};
  ValidateRequest v{fresh, {2000, 98}, {{"w", Timestamp{1, 0}}}, {{"w", "w1"}}};
  v.oldest_inflight = Timestamp{2000, 98};
  Broadcast(98, v);
  Broadcast(98, CommitRequest{fresh, true, {2000, 98}, {2000, 98}});
  sim_.Run();

  EXPECT_EQ(replicas_[1]->hosted_backup_count(), 0u);
  EXPECT_EQ(replicas_[1]->trecord().Partition(0).Find(inflight)->status,
            TxnStatus::kValidatedOk);
}

// --- Soak: the trecord plateaus under a sustained session workload --------

TEST(GcSoakTest, TrecordStaysBoundedOverManyTransactions) {
  DapAudit::SetMode(DapMode::kCount);
  DapAudit::ResetViolations();
  Simulator sim(CostModel{});
  SimTransport transport(&sim);
  SimTimeSource time_source(&sim);
  std::vector<std::unique_ptr<MeerkatReplica>> replicas;
  for (ReplicaId r = 0; r < 3; r++) {
    replicas.push_back(std::make_unique<MeerkatReplica>(
        r, QuorumConfig::ForReplicas(3), 2, &transport, /*group_base=*/0, RetryPolicy(),
        OverloadOptions(), GcOptions().WithIntervalDispatches(4)));
    for (int k = 0; k < 8; k++) {
      replicas.back()->LoadKey("key" + std::to_string(k), "0", Timestamp{1, 0});
    }
  }
  SessionOptions options;
  options.quorum = QuorumConfig::ForReplicas(3);
  options.cores_per_replica = 2;
  MeerkatSession session(1, &transport, &time_source, options, 17);

  constexpr int kTxns = 400;
  int committed = 0;
  size_t peak = 0;
  for (int i = 0; i < kTxns; i++) {
    TxnPlan plan;
    plan.ops.push_back(Op::Put("key" + std::to_string(i % 8), std::to_string(i)));
    SimActor* actor = transport.ActorFor(Address::Client(1), 0);
    sim.Schedule(sim.now() + 1, actor, [&](SimContext&) {
      session.ExecuteAsync(std::move(plan), [&](const TxnOutcome& o) {
        if (o.result == TxnResult::kCommit) {
          committed++;
        }
      });
    });
    sim.Run();
    for (auto& replica : replicas) {
      peak = std::max(peak, replica->trecord().TotalSize());
    }
  }

  EXPECT_EQ(committed, kTxns);
  // Without GC every committed transaction leaves a record forever
  // (TotalSize == kTxns at each replica). With the watermark the live set
  // must plateau near the trim lag, far below the transaction count.
  EXPECT_LT(peak, static_cast<size_t>(kTxns) / 4) << "trecord did not plateau";
  uint64_t trim_passes = 0;
  for (auto& replica : replicas) {
    trim_passes += replica->gc_trim_passes();
    EXPECT_LT(replica->trecord().TotalSize(), static_cast<size_t>(kTxns) / 4);
  }
  EXPECT_GT(trim_passes, 0u);
  EXPECT_EQ(DapAudit::violations(), 0u) << "GC broke data-access parallelism";
}

}  // namespace
}  // namespace meerkat
