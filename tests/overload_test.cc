// Tests for the contention-adaptive overload control plane (ISSUE 7):
// the client-side AIMD admission window, the abort-aware retry policy with
// priority aging, replica-side load shedding (kRetryLater + backoff hint),
// and the BlockingClient deadline/no-quorum failure paths.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "src/api/blocking_client.h"
#include "src/common/overload.h"
#include "src/common/retry.h"
#include "src/protocol/replica.h"
#include "tests/test_util.h"

namespace meerkat {
namespace {

// ---------------------------------------------------------------------------
// AimdWindow
// ---------------------------------------------------------------------------

AdmissionOptions SmallWindow(double initial = 2.0) {
  return AdmissionOptions().WithEnabled(true).WithInitialWindow(initial).WithWindowRange(1.0,
                                                                                        64.0);
}

TEST(AimdWindowTest, DisabledWindowAdmitsFreely) {
  AimdWindow w((AdmissionOptions()));  // enabled = false.
  EXPECT_FALSE(w.enabled());
  for (int i = 0; i < 1000; i++) {
    EXPECT_TRUE(w.TryAcquire());
  }
  // Outcomes neither block nor adapt anything.
  w.OnOutcome(TxnResult::kAbort, AbortReason::kOverload);
  EXPECT_TRUE(w.TryAcquire());
}

TEST(AimdWindowTest, TryAcquireRespectsWindow) {
  AimdWindow w(SmallWindow(2.0));
  EXPECT_TRUE(w.TryAcquire());
  EXPECT_TRUE(w.TryAcquire());
  EXPECT_EQ(w.inflight(), 2u);
  EXPECT_FALSE(w.TryAcquire()) << "admitted past a full window";
  // Releasing one slot re-opens admission.
  w.Release();
  EXPECT_TRUE(w.TryAcquire());
}

TEST(AimdWindowTest, PriorityBypassAdmitsPastFullWindow) {
  AimdWindow w(SmallWindow(1.0));
  EXPECT_TRUE(w.TryAcquire());
  EXPECT_FALSE(w.TryAcquire());
  EXPECT_TRUE(w.TryAcquire(/*priority_bypass=*/true))
      << "aged (priority) attempts must not starve behind admission";
  EXPECT_EQ(w.inflight(), 2u);
}

TEST(AimdWindowTest, CommitGrowsWindowAdditively) {
  AimdWindow w(SmallWindow(2.0));
  double before = w.window();
  ASSERT_TRUE(w.TryAcquire());
  w.OnOutcome(TxnResult::kCommit, AbortReason::kNone);
  // TCP-Reno shape: one commit grows the window by ai/w.
  EXPECT_GT(w.window(), before);
  EXPECT_LE(w.window(), before + 1.0);
  EXPECT_EQ(w.inflight(), 0u) << "OnOutcome must release the slot";
}

TEST(AimdWindowTest, ContentionShrinksGentlyOverloadShrinksHard) {
  AimdWindow a(SmallWindow(32.0));
  ASSERT_TRUE(a.TryAcquire());
  a.OnOutcome(TxnResult::kAbort, AbortReason::kOccConflict);
  EXPECT_DOUBLE_EQ(a.window(), 32.0 * a.options().conflict_decrease);

  AimdWindow b(SmallWindow(32.0));
  ASSERT_TRUE(b.TryAcquire());
  b.OnOutcome(TxnResult::kAbort, AbortReason::kOverload);
  EXPECT_DOUBLE_EQ(b.window(), 32.0 * b.options().overload_decrease);
  EXPECT_LT(b.window(), a.window()) << "overload must back off harder than contention";
}

TEST(AimdWindowTest, WindowClampsAtMin) {
  AimdWindow w(SmallWindow(1.0));
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(w.TryAcquire(/*priority_bypass=*/true));
    w.OnOutcome(TxnResult::kAbort, AbortReason::kOverload);
  }
  EXPECT_GE(w.window(), w.options().min_window);
}

TEST(AimdWindowTest, AcquireOrParkTransfersSlotToWaiter) {
  AimdWindow w(SmallWindow(1.0));
  ASSERT_TRUE(w.TryAcquire());

  std::atomic<int> resumed{0};
  // Window full: the callback parks instead of running.
  bool immediate = w.AcquireOrPark([&] { resumed.fetch_add(1); });
  EXPECT_FALSE(immediate);
  EXPECT_EQ(resumed.load(), 0);
  EXPECT_EQ(w.waits(), 1u);

  // Releasing the held slot transfers it to the parked waiter: the resume
  // runs (outside the lock) already holding a slot, so inflight stays 1.
  w.OnOutcome(TxnResult::kCommit, AbortReason::kNone);
  EXPECT_EQ(resumed.load(), 1);
  EXPECT_EQ(w.inflight(), 1u);
  w.Release();
  EXPECT_EQ(w.inflight(), 0u);

  // With room available the callback runs inline and is not kept.
  immediate = w.AcquireOrPark([&] { resumed.fetch_add(100); });
  EXPECT_TRUE(immediate);
  EXPECT_EQ(resumed.load(), 1) << "resume must not be invoked when admitted immediately";
  w.Release();
}

TEST(AimdWindowTest, AcquireBlockingWakesWhenSlotFrees) {
  AimdWindow w(SmallWindow(1.0));
  ASSERT_TRUE(w.TryAcquire());
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    w.AcquireBlocking();
    acquired.store(true);
  });
  // The blocked thread cannot make progress until the slot frees.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load());
  w.Release();
  blocked.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(w.inflight(), 1u);
}

// ---------------------------------------------------------------------------
// AbortRetryPolicy
// ---------------------------------------------------------------------------

TEST(AbortRetryPolicyTest, RetriesAbortsOnly) {
  AbortRetryPolicy p;
  EXPECT_TRUE(p.ShouldRetry(TxnResult::kAbort, AbortReason::kOccConflict, 1));
  EXPECT_TRUE(p.ShouldRetry(TxnResult::kAbort, AbortReason::kOverload, 1));
  EXPECT_FALSE(p.ShouldRetry(TxnResult::kCommit, AbortReason::kNone, 1));
  // kFailed means the quorum is gone, not busy: retrying cannot help.
  EXPECT_FALSE(p.ShouldRetry(TxnResult::kFailed, AbortReason::kNoQuorum, 1));
  // Attempt budget is exhausted at max_attempts.
  EXPECT_FALSE(p.ShouldRetry(TxnResult::kAbort, AbortReason::kOccConflict, p.max_attempts));
}

TEST(AbortRetryPolicyTest, PriorityAgesPastThreshold) {
  AbortRetryPolicy p;
  p.aging_threshold = 3;
  EXPECT_EQ(p.PriorityFor(1), 0);
  EXPECT_EQ(p.PriorityFor(3), 0);
  EXPECT_EQ(p.PriorityFor(4), 1);
  p.aging_threshold = 0;  // Aging disabled.
  EXPECT_EQ(p.PriorityFor(100), 0);
}

TEST(AbortRetryPolicyTest, OverloadScheduleDominatesContentionAndHonorsHint) {
  AbortRetryPolicy p;
  p.contention = RetryPolicy::WithTimeout(1'000);
  p.overload = RetryPolicy::WithTimeout(100'000);
  p.contention.jitter = 0;
  p.overload.jitter = 0;
  Rng rng(7);
  EXPECT_EQ(p.DelayNanos(AbortReason::kOccConflict, 0, 1, rng), 1'000u);
  EXPECT_EQ(p.DelayNanos(AbortReason::kOverload, 0, 1, rng), 100'000u);
  EXPECT_EQ(p.DelayNanos(AbortReason::kNoQuorum, 0, 1, rng), 100'000u);
  EXPECT_EQ(p.DelayNanos(AbortReason::kDeadline, 0, 1, rng), 100'000u);
  // The server hint raises (but never lowers) the overload delay.
  EXPECT_EQ(p.DelayNanos(AbortReason::kOverload, 750'000, 1, rng), 750'000u);
  EXPECT_EQ(p.DelayNanos(AbortReason::kOverload, 50, 1, rng), 100'000u);
  // Hints are ignored when the policy says so (bench's blind-retry mode).
  p.respect_server_hint = false;
  EXPECT_EQ(p.DelayNanos(AbortReason::kOverload, 750'000, 1, rng), 100'000u);
  // Contention delays never consult the hint.
  p.respect_server_hint = true;
  EXPECT_EQ(p.DelayNanos(AbortReason::kOccConflict, 750'000, 1, rng), 1'000u);
}

TEST(AbortRetryPolicyTest, AgedContentionRetriesUseBaseDelay) {
  AbortRetryPolicy p;
  p.contention = RetryPolicy::WithTimeout(1'000);
  p.contention.jitter = 0;
  p.aging_threshold = 5;
  Rng rng(7);
  // While the next attempt is still un-aged the schedule backs off
  // exponentially...
  EXPECT_EQ(p.DelayNanos(AbortReason::kOccConflict, 0, 2, rng), 2'000u);
  EXPECT_EQ(p.DelayNanos(AbortReason::kOccConflict, 0, 3, rng), 4'000u);
  // ...but once the next attempt runs at priority 1, backing off harder would
  // undo the boost: aged retries use the base delay.
  EXPECT_EQ(p.DelayNanos(AbortReason::kOccConflict, 0, 5, rng), 1'000u);
  EXPECT_EQ(p.DelayNanos(AbortReason::kOccConflict, 0, 9, rng), 1'000u);
}

// ---------------------------------------------------------------------------
// Replica-side load shedding (driven directly through a loopback transport,
// same idiom as replica_test.cc).
// ---------------------------------------------------------------------------

class ShedLoopbackTransport : public Transport {
 public:
  void RegisterReplica(ReplicaId, CoreId core, TransportReceiver* receiver) override {
    if (receivers_.size() <= core) {
      receivers_.resize(core + 1);
    }
    receivers_[core] = receiver;
  }
  void RegisterClient(uint32_t, TransportReceiver*) override {}
  void UnregisterClient(uint32_t) override {}
  void SetTimer(const Address&, CoreId, uint64_t, uint64_t) override {}
  void Send(Message msg) override { sent.push_back(std::move(msg)); }

  void Inject(CoreId core, Message msg) { receivers_[core]->Receive(std::move(msg)); }

  template <typename T>
  const T* LastReply() const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (const T* p = std::get_if<T>(&it->payload)) {
        return p;
      }
    }
    return nullptr;
  }

  std::vector<Message> sent;

 private:
  std::vector<TransportReceiver*> receivers_;
};

class SheddingReplicaFixture : public ::testing::Test {
 protected:
  SheddingReplicaFixture() {
    // One non-final transaction per core is the shed watermark: the second
    // fresh VALIDATE on a core is rejected. Queue-EWMA shedding is disabled
    // so the tests exercise exactly the inflight signal.
    OverloadOptions overload = OverloadOptions()
                                   .WithEnabled(true)
                                   .WithMaxInflightPerCore(1)
                                   .WithQueueWatermark(0)
                                   .WithBaseBackoffHint(50'000);
    replica_ = std::make_unique<MeerkatReplica>(0, QuorumConfig::ForReplicas(3), 2, &transport_,
                                                /*group_base=*/0, RetryPolicy(), overload);
    replica_->LoadKey("a", "v0", Timestamp{1, 0});
    replica_->LoadKey("b", "v0", Timestamp{1, 0});
    replica_->LoadKey("c", "v0", Timestamp{1, 0});
  }

  Message From(uint32_t client, CoreId core, Payload payload) {
    Message msg;
    msg.src = Address::Client(client);
    msg.dst = Address::Replica(0);
    msg.core = core;
    msg.payload = std::move(payload);
    return msg;
  }

  // Blind write of `key` at `ts`: distinct keys keep the fixture's
  // transactions OCC-independent so votes are kValidatedOk.
  ValidateRequest Validate(TxnId tid, Timestamp ts, const std::string& key,
                           uint8_t priority = 0) {
    ValidateRequest req{tid, ts, {}, {{key, "new"}}};
    req.priority = priority;
    return req;
  }

  ShedLoopbackTransport transport_;
  std::unique_ptr<MeerkatReplica> replica_;
};

TEST_F(SheddingReplicaFixture, ShedsFreshValidatePastInflightWatermark) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  EXPECT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(replica_->core_inflight(0), 1u);

  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b")));
  const ValidateReply* shed = transport_.LastReply<ValidateReply>();
  ASSERT_NE(shed, nullptr);
  EXPECT_EQ(shed->status, TxnStatus::kRetryLater);
  EXPECT_GE(shed->backoff_hint_ns, replica_->overload_options().base_backoff_hint_ns);
  EXPECT_EQ(replica_->shed_total(), 1u);
  // A shed is a fast-reject: no record, no OCC, no registrations.
  EXPECT_EQ(replica_->trecord().Partition(0).Find({2, 1}), nullptr);
  KeyEntry* entry = replica_->store().Find("b");
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->writers.empty());
}

TEST_F(SheddingReplicaFixture, SheddingIsPerCore) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  // Core 1 has its own inflight counter: not shed.
  transport_.Inject(1, From(2, 1, Validate({2, 1}, {51, 2}, "b")));
  EXPECT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(replica_->shed_total(), 0u);
}

TEST_F(SheddingReplicaFixture, PriorityBypassesShedding) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b", /*priority=*/1)));
  EXPECT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kValidatedOk)
      << "aged (priority) VALIDATE was shed";
  EXPECT_EQ(replica_->shed_total(), 0u);
  EXPECT_EQ(replica_->core_inflight(0), 2u);
}

TEST_F(SheddingReplicaFixture, CommitDrainsInflightAndReopensAdmission) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b")));
  ASSERT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kRetryLater);

  // Finalizing the first transaction frees its inflight slot...
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, true}));
  EXPECT_EQ(replica_->core_inflight(0), 0u);
  // ...so the shed transaction's retry now gets a real vote.
  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b")));
  EXPECT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kValidatedOk);
}

TEST_F(SheddingReplicaFixture, AbortDecisionAlsoDrainsInflight) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, false}));
  EXPECT_EQ(replica_->core_inflight(0), 0u);
}

TEST_F(SheddingReplicaFixture, DuplicateValidateOfTrackedTxnIsNotShed) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  // A retransmission of an already-voted transaction must re-report the
  // recorded vote even when the core is at its watermark — shedding retries
  // of admitted work would wedge their coordinators.
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  EXPECT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(replica_->shed_total(), 0u);
  EXPECT_EQ(replica_->core_inflight(0), 1u) << "duplicate VALIDATE double-counted inflight";
}

TEST_F(SheddingReplicaFixture, BackoffHintScalesWithInflightDepth) {
  uint64_t base = replica_->overload_options().base_backoff_hint_ns;
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));
  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b")));
  uint64_t hint_at_1 = transport_.LastReply<ValidateReply>()->backoff_hint_ns;
  EXPECT_EQ(hint_at_1, base * 2) << "1x over a watermark of 1";
  // Deepen the backlog via a priority admit, then shed again: the hint grows.
  transport_.Inject(0, From(3, 0, Validate({3, 1}, {52, 3}, "c", /*priority=*/1)));
  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b")));
  uint64_t hint_at_2 = transport_.LastReply<ValidateReply>()->backoff_hint_ns;
  EXPECT_GT(hint_at_2, hint_at_1);
}

// The starvation regression, at the protocol level: a transaction that keeps
// getting shed behind a stuck inflight transaction commits once priority
// aging kicks in — shedding alone can never permanently starve a client.
TEST_F(SheddingReplicaFixture, StarvedTxnCommitsViaPriorityAging) {
  // Txn A occupies the core's only inflight slot and never finalizes (its
  // coordinator is slow or gone).
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1}, "a")));

  // Txn B is shed on every plain-priority retry, deterministically.
  for (int attempt = 0; attempt < 3; attempt++) {
    transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b")));
    ASSERT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kRetryLater)
        << "attempt " << attempt;
  }
  EXPECT_EQ(replica_->shed_total(), 3u);

  // Once B's retry loop ages it to priority 1 it gets a vote and commits.
  transport_.Inject(0, From(2, 0, Validate({2, 1}, {51, 2}, "b", /*priority=*/1)));
  ASSERT_EQ(transport_.LastReply<ValidateReply>()->status, TxnStatus::kValidatedOk);
  transport_.Inject(0, From(2, 0, CommitRequest{{2, 1}, true}));
  EXPECT_EQ(replica_->store().Read("b").value, "new");
  EXPECT_EQ(replica_->store().Read("b").wts, (Timestamp{51, 2}));
}

// ---------------------------------------------------------------------------
// BlockingClient end-to-end: admission window integration and the
// deadline / no-quorum failure paths (threaded runtime).
// ---------------------------------------------------------------------------

TEST(BlockingClientOverloadTest, CommitsFlowThroughEnabledAdmissionWindow) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat);
  options.retry = RetryPolicy::WithTimeout(5'000'000);
  options.admission =
      AdmissionOptions().WithEnabled(true).WithInitialWindow(2).WithWindowRange(1, 8);
  ThreadedHarness h(options);
  h.system().Load("count", "0");

  BlockingClient client(h.system(), 1);
  TxnPlan increment = Txn()
                          .RmwFn("count",
                                 [](const std::string& v) {
                                   return std::to_string(v.empty() ? 1 : std::stoi(v) + 1);
                                 })
                          .Build();
  for (int i = 0; i < 8; i++) {
    ASSERT_EQ(client.ExecuteWithRetry(increment).result, TxnResult::kCommit);
  }
  EXPECT_EQ(client.Get("count").value_or(""), "8");
  // Every slot was released and the commit streak grew the window.
  AimdWindow& window = h.system().admission_window();
  EXPECT_EQ(window.inflight(), 0u);
  EXPECT_GT(window.window(), 2.0);
}

TEST(BlockingClientOverloadTest, AttemptDeadlineFailsTxnWhenQuorumUnreachable) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat);
  options.retry = RetryPolicy::WithTimeout(1'000'000);
  options.retry.attempt_deadline_ns = 20'000'000;  // 20ms, well before 64 retransmits.
  ThreadedHarness h(options);
  h.system().Load("k", "v0");
  for (ReplicaId r = 0; r < 3; r++) {
    h.transport().faults().CrashReplica(r);
  }

  BlockingClient client(h.system(), 1);
  TxnOutcome outcome = client.Execute(Txn().Put("k", "v1").Build());
  EXPECT_EQ(outcome.result, TxnResult::kFailed);
  EXPECT_EQ(outcome.reason, AbortReason::kDeadline);
}

TEST(BlockingClientOverloadTest, RetransmitBudgetFailsTxnWithNoQuorum) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat);
  options.retry = RetryPolicy::WithTimeout(500'000);
  options.retry.max_attempts = 3;  // Exhausts in ~a few ms; no deadline armed.
  ThreadedHarness h(options);
  h.system().Load("k", "v0");
  for (ReplicaId r = 0; r < 3; r++) {
    h.transport().faults().CrashReplica(r);
  }

  BlockingClient client(h.system(), 1);
  TxnOutcome outcome = client.Execute(Txn().Put("k", "v1").Build());
  EXPECT_EQ(outcome.result, TxnResult::kFailed);
  EXPECT_EQ(outcome.reason, AbortReason::kNoQuorum);
  EXPECT_GT(outcome.retransmits, 0u);
}

TEST(BlockingClientOverloadTest, ExecuteWithRetryDoesNotRetryFailedOutcomes) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat);
  options.retry = RetryPolicy::WithTimeout(500'000);
  options.retry.max_attempts = 2;
  ThreadedHarness h(options);
  for (ReplicaId r = 0; r < 3; r++) {
    h.transport().faults().CrashReplica(r);
  }

  BlockingClient client(h.system(), 1);
  TxnOutcome outcome = client.ExecuteWithRetry(Txn().Put("k", "v1").Build());
  EXPECT_EQ(outcome.result, TxnResult::kFailed);
  EXPECT_EQ(outcome.attempts, 1u) << "kFailed (quorum gone) must not be retried";
}

}  // namespace
}  // namespace meerkat
