// Tests for the Fig. 1 substrate: the plain PUT server, its closed-loop
// client, and the counter-bottleneck phenomenon in miniature.

#include <gtest/gtest.h>

#include "src/baselines/plain_kv.h"
#include "src/sim/simulator.h"
#include "src/transport/sim_transport.h"

namespace meerkat {
namespace {

TEST(PlainKvTest, ClosedLoopClientStreamsPuts) {
  CostModel cost = CostModel::ForStack(NetworkStack::kErpc);
  Simulator sim(cost);
  SimTransport transport(&sim);
  PlainKvServer server(0, /*num_cores=*/2, &transport, /*use_shared_counter=*/true);
  PlainKvClient client(1, 0, 2, &transport, 7);

  sim.Schedule(1, transport.ActorFor(Address::Client(1), 0),
               [&](SimContext&) { client.Start(); });
  sim.Run(5'000'000);  // 5 ms of virtual time.
  sim.Clear();

  EXPECT_GT(client.completed(), 100u);
  // The counter counts every handled PUT (replies may still be in flight).
  EXPECT_GE(server.puts_handled(), client.completed());
  EXPECT_GT(server.store().SizeForTesting(), 0u);
}

TEST(PlainKvTest, SharedCounterCapsThroughputOnFastStack) {
  // Miniature Fig. 1: with many cores on the kernel-bypass stack, adding the
  // shared counter must cost real throughput; on the slow stack it must not.
  auto throughput = [](NetworkStack stack, bool counter) {
    CostModel cost = CostModel::ForStack(stack);
    Simulator sim(cost);
    SimTransport transport(&sim);
    PlainKvServer server(0, /*num_cores=*/16, &transport, counter);
    std::vector<std::unique_ptr<PlainKvClient>> clients;
    for (uint32_t c = 1; c <= 128; c++) {
      clients.push_back(std::make_unique<PlainKvClient>(c, 0, 16, &transport, c));
    }
    for (uint32_t c = 1; c <= 128; c++) {
      PlainKvClient* client = clients[c - 1].get();
      sim.Schedule(c * 50, transport.ActorFor(Address::Client(c), 0),
                   [client](SimContext&) { client->Start(); });
    }
    sim.Run(10'000'000);
    sim.Clear();
    uint64_t total = 0;
    for (auto& client : clients) {
      total += client->completed();
    }
    return static_cast<double>(total) / 0.01;  // ops/sec over 10ms.
  };

  double erpc = throughput(NetworkStack::kErpc, false);
  double erpc_counter = throughput(NetworkStack::kErpc, true);
  double udp = throughput(NetworkStack::kLinuxUdp, false);
  double udp_counter = throughput(NetworkStack::kLinuxUdp, true);

  EXPECT_LT(erpc_counter, erpc * 0.95) << "counter invisible on fast stack";
  EXPECT_GT(udp_counter, udp * 0.97) << "counter visibly hurt the slow stack";
  EXPECT_GT(erpc, udp * 4) << "kernel-bypass speedup missing";
}

}  // namespace
}  // namespace meerkat
