// UDP transport unit tests: wire round-trips, per-core flow steering (in
// both steering modes), sendmmsg fan-out batching, timers, fault injection,
// endpoint-range guards, and the steady-state zero-allocation guarantee of
// the encode/send path.

#include "src/transport/udp_transport.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/transport/serialization.h"

// Thread-local allocation counter wired into global operator new: lets the
// zero-alloc test observe exactly the sending thread's heap traffic while
// poller threads decode (and legitimately allocate) concurrently.
namespace {
thread_local int64_t t_alloc_count = 0;
}  // namespace

// noinline keeps GCC from pairing a specific inlined new with the generic
// delete and warning about a mismatch that cannot happen (both sides always
// forward to malloc/free).
__attribute__((noinline)) void* operator new(size_t size) {
  t_alloc_count++;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

__attribute__((noinline)) void operator delete(void* p) noexcept { std::free(p); }
__attribute__((noinline)) void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace meerkat {
namespace {

struct RecordingReceiver : TransportReceiver {
  std::mutex mu;
  std::vector<Message> msgs;
  std::set<std::thread::id> threads;
  std::atomic<uint64_t> count{0};

  void Receive(Message&& msg) override {
    {
      std::lock_guard<std::mutex> lock(mu);
      msgs.push_back(std::move(msg));
      threads.insert(std::this_thread::get_id());
    }
    count.fetch_add(1, std::memory_order_release);
  }

  bool WaitForCount(uint64_t n, int timeout_ms = 5000) {
    for (int i = 0; i < timeout_ms; i++) {
      if (count.load(std::memory_order_acquire) >= n) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return count.load(std::memory_order_acquire) >= n;
  }
};

Message MakeGet(uint32_t from_client, const Address& dst, CoreId core, uint64_t seq,
                const std::string& key) {
  Message msg;
  msg.src = Address::Client(from_client);
  msg.dst = dst;
  msg.core = core;
  msg.payload = GetRequest{TxnId{from_client, seq}, seq, key};
  return msg;
}

// Both steering modes must produce identical routing behavior; the param is
// force_distinct_ports.
class UdpModeTest : public ::testing::TestWithParam<bool> {
 protected:
  UdpTransport::Options Opts() const {
    UdpTransport::Options o;
    o.force_distinct_ports = GetParam();
    return o;
  }
};

TEST_P(UdpModeTest, ClientRoundTripAcrossTheWire) {
  UdpTransport t(Opts());
  RecordingReceiver a;
  RecordingReceiver b;
  t.RegisterClient(1, &a);
  t.RegisterClient(2, &b);

  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Client(2);
  msg.core = 0;
  msg.payload = GetReply{TxnId{1, 9}, 9, "key", "value", Timestamp{42, 1}, true};
  t.Send(std::move(msg));

  ASSERT_TRUE(b.WaitForCount(1));
  std::lock_guard<std::mutex> lock(b.mu);
  ASSERT_EQ(b.msgs.size(), 1u);
  const auto* reply = std::get_if<GetReply>(&b.msgs[0].payload);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->key, "key");
  EXPECT_EQ(reply->value, "value");
  EXPECT_EQ(reply->wts, (Timestamp{42, 1}));
  EXPECT_EQ(b.msgs[0].src, Address::Client(1));
  EXPECT_EQ(a.count.load(), 0u);
}

TEST_P(UdpModeTest, SteeringDeliversEachCoreOnItsOwnPollerThread) {
  constexpr CoreId kCores = 4;
  constexpr uint64_t kPerCore = 25;
  UdpTransport t(Opts());
  RecordingReceiver receivers[kCores];
  for (CoreId c = 0; c < kCores; c++) {
    t.RegisterReplica(0, c, &receivers[c]);
  }

  for (uint64_t i = 0; i < kPerCore; i++) {
    for (CoreId c = 0; c < kCores; c++) {
      t.Send(MakeGet(1, Address::Replica(0), c, i * kCores + c, "k"));
    }
  }

  std::set<std::thread::id> all_threads;
  for (CoreId c = 0; c < kCores; c++) {
    ASSERT_TRUE(receivers[c].WaitForCount(kPerCore)) << "core " << c;
    std::lock_guard<std::mutex> lock(receivers[c].mu);
    EXPECT_EQ(receivers[c].msgs.size(), kPerCore) << "core " << c;
    // Every message landed on the endpoint it was steered to...
    for (const Message& m : receivers[c].msgs) {
      EXPECT_EQ(m.core, c);
    }
    // ...and each core's traffic was dispatched by exactly one thread,
    // distinct from every other core's (software RSS preserves DAP).
    ASSERT_EQ(receivers[c].threads.size(), 1u) << "core " << c;
    all_threads.insert(*receivers[c].threads.begin());
  }
  EXPECT_EQ(all_threads.size(), kCores);
}

TEST_P(UdpModeTest, SendManyFanoutIsDelivered) {
  UdpTransport t(Opts());
  RecordingReceiver receivers[3];
  for (ReplicaId r = 0; r < 3; r++) {
    t.RegisterReplica(r, 0, &receivers[r]);
  }

  TxnSetsPtr sets = MakeTxnSets({ReadSetEntry{"rk", Timestamp{5, 1}}},
                                {WriteSetEntry{"wk", "wv"}});
  std::vector<Message> batch(3);
  for (ReplicaId r = 0; r < 3; r++) {
    batch[r].src = Address::Client(1);
    batch[r].dst = Address::Replica(r);
    batch[r].core = 0;
    batch[r].payload = ValidateRequest{TxnId{1, 7}, Timestamp{10, 1}, sets};
  }
  t.SendMany(batch.data(), batch.size());

  for (ReplicaId r = 0; r < 3; r++) {
    ASSERT_TRUE(receivers[r].WaitForCount(1)) << "replica " << r;
    std::lock_guard<std::mutex> lock(receivers[r].mu);
    const auto* req = std::get_if<ValidateRequest>(&receivers[r].msgs[0].payload);
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->tid, (TxnId{1, 7}));
    ASSERT_EQ(req->read_set().size(), 1u);
    EXPECT_EQ(req->read_set()[0].key, "rk");
    ASSERT_EQ(req->write_set().size(), 1u);
    EXPECT_EQ(req->write_set()[0].value, "wv");
  }
}

// Wire-identical fan-out siblings take WireSend's encode-once path (the
// staged datagram is byte-copied with only the dst field patched); every
// replica must still decode ITS OWN address, not the first sibling's.
TEST_P(UdpModeTest, FanoutSharedPayloadPatchesDestination) {
  UdpTransport t(Opts());
  RecordingReceiver receivers[3];
  for (ReplicaId r = 0; r < 3; r++) {
    t.RegisterReplica(r, 0, &receivers[r]);
  }

  TxnSetsPtr sets = MakeTxnSets({ReadSetEntry{"rk", Timestamp{5, 1}}},
                                {WriteSetEntry{"wk", "wv"}});
  std::vector<Message> batch(3);
  for (ReplicaId r = 0; r < 3; r++) {
    batch[r].src = Address::Client(9);
    batch[r].dst = Address::Replica(r);
    batch[r].core = 0;
    batch[r].payload = ValidateRequest{TxnId{9, 1}, Timestamp{10, 1}, sets};
  }
  t.SendMany(batch.data(), batch.size());

  for (ReplicaId r = 0; r < 3; r++) {
    ASSERT_TRUE(receivers[r].WaitForCount(1)) << "replica " << r;
    std::lock_guard<std::mutex> lock(receivers[r].mu);
    EXPECT_EQ(receivers[r].msgs[0].src, Address::Client(9));
    EXPECT_EQ(receivers[r].msgs[0].dst, Address::Replica(r));
    EXPECT_EQ(receivers[r].msgs[0].core, 0u);
  }
}

// A batch that is ALMOST wire-identical — same shared sets, different tids —
// must not be collapsed by the encode-once path: every replica gets its own
// transaction, not a copy of the first.
TEST_P(UdpModeTest, FanoutWithDistinctTidsIsNotCollapsed) {
  UdpTransport t(Opts());
  RecordingReceiver receivers[3];
  for (ReplicaId r = 0; r < 3; r++) {
    t.RegisterReplica(r, 0, &receivers[r]);
  }

  TxnSetsPtr sets = MakeTxnSets({ReadSetEntry{"rk", Timestamp{5, 1}}},
                                {WriteSetEntry{"wk", "wv"}});
  std::vector<Message> batch(3);
  for (ReplicaId r = 0; r < 3; r++) {
    batch[r].src = Address::Client(9);
    batch[r].dst = Address::Replica(r);
    batch[r].core = 0;
    batch[r].payload = ValidateRequest{TxnId{9, 100 + r}, Timestamp{10, 1}, sets};
  }
  t.SendMany(batch.data(), batch.size());

  for (ReplicaId r = 0; r < 3; r++) {
    ASSERT_TRUE(receivers[r].WaitForCount(1)) << "replica " << r;
    std::lock_guard<std::mutex> lock(receivers[r].mu);
    const auto* req = std::get_if<ValidateRequest>(&receivers[r].msgs[0].payload);
    ASSERT_NE(req, nullptr);
    EXPECT_EQ(req->tid, (TxnId{9, 100 + r}));
    EXPECT_EQ(receivers[r].msgs[0].dst, Address::Replica(r));
  }
}

TEST_P(UdpModeTest, TimerFiresOnTheOwningCore) {
  UdpTransport t(Opts());
  RecordingReceiver r0;
  RecordingReceiver r1;
  t.RegisterReplica(0, 0, &r0);
  t.RegisterReplica(0, 1, &r1);

  t.SetTimer(Address::Replica(0), 1, 1'000'000, 77);
  ASSERT_TRUE(r1.WaitForCount(1));
  std::lock_guard<std::mutex> lock(r1.mu);
  const auto* fire = std::get_if<TimerFire>(&r1.msgs[0].payload);
  ASSERT_NE(fire, nullptr);
  EXPECT_EQ(fire->timer_id, 77u);
  EXPECT_EQ(r0.count.load(), 0u);
}

TEST_P(UdpModeTest, InjectedDropsSuppressDelivery) {
  UdpTransport t(Opts());
  RecordingReceiver r;
  t.RegisterClient(1, &r);
  t.faults().SetDropProbability(1.0);
  for (int i = 0; i < 10; i++) {
    Message msg;
    msg.src = Address::Client(2);
    msg.dst = Address::Client(1);
    msg.core = 0;
    msg.payload = PutReply{static_cast<uint64_t>(i)};
    t.Send(std::move(msg));
  }
  t.DrainForTesting();
  EXPECT_EQ(r.count.load(), 0u);
}

TEST_P(UdpModeTest, UnregisteredEndpointDropsInsteadOfCrashing) {
  UdpTransport t(Opts());
  RecordingReceiver r;
  t.RegisterClient(1, &r);
  t.UnregisterClient(1);
  uint64_t drops_before = SnapshotMetrics().CounterValue("udp.no_receiver_drops");
  t.Send(MakeGet(2, Address::Client(1), 0, 1, "k"));
  t.DrainForTesting();
  EXPECT_EQ(r.count.load(), 0u);
  EXPECT_GE(SnapshotMetrics().CounterValue("udp.no_receiver_drops"), drops_before + 1);
}

TEST_P(UdpModeTest, UnroutableDestinationIsCountedNotSent) {
  UdpTransport t(Opts());
  uint64_t before = SnapshotMetrics().CounterValue("udp.unroutable_drops");
  t.Send(MakeGet(1, Address::Client(999), 0, 1, "k"));
  EXPECT_GE(SnapshotMetrics().CounterValue("udp.unroutable_drops"), before + 1);
}

TEST_P(UdpModeTest, GarbageDatagramsFailDecodeCleanly) {
  UdpTransport t(Opts());
  RecordingReceiver r;
  t.RegisterReplica(0, 0, &r);
  uint16_t port = t.PortOfForTesting(Address::Replica(0), 0);
  ASSERT_NE(port, 0);

  uint64_t decode_before = SnapshotMetrics().CounterValue("udp.decode_failures");
  int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(port);
  // Steering word for core 0, then junk the codec must reject.
  uint8_t garbage[32] = {0, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef};
  for (int i = 0; i < 5; i++) {
    garbage[8] = static_cast<uint8_t>(i);
    ASSERT_EQ(::sendto(fd, garbage, sizeof(garbage), 0,
                       reinterpret_cast<sockaddr*>(&dst), sizeof(dst)),
              static_cast<ssize_t>(sizeof(garbage)));
  }
  ::close(fd);
  t.DrainForTesting();
  EXPECT_EQ(r.count.load(), 0u);
  EXPECT_GE(SnapshotMetrics().CounterValue("udp.decode_failures"), decode_before + 5);
}

// The acceptance criterion for the wire path: once thread-local buffers are
// warm, a coordinator-style SendMany fan-out performs zero heap allocations
// per message on the sending thread. Shared txn sets (refcounted) + reusable
// encode buffers + stack-staged batches make this hold by construction; this
// test keeps it true.
TEST_P(UdpModeTest, ZeroAllocationsPerMessageAtSteadyState) {
  UdpTransport t(Opts());
  RecordingReceiver receivers[3];
  for (ReplicaId r = 0; r < 3; r++) {
    t.RegisterReplica(r, 0, &receivers[r]);
  }

  TxnSetsPtr sets = MakeTxnSets(
      {ReadSetEntry{"read-key-one", Timestamp{5, 1}}, ReadSetEntry{"read-key-two", Timestamp{6, 1}}},
      {WriteSetEntry{"write-key", "written-value"}});
  std::vector<Message> batch(3);
  auto fill = [&] {
    for (ReplicaId r = 0; r < 3; r++) {
      batch[r].src = Address::Client(7);
      batch[r].dst = Address::Replica(r);
      batch[r].core = 0;
      // Variant assignment of a ValidateRequest copies the TxnSetsPtr — a
      // refcount bump, not a deep copy or allocation.
      batch[r].payload = ValidateRequest{TxnId{7, 1}, Timestamp{1, 7}, sets};
    }
  };

  // Warmup: first sends grow the thread-local encode buffers and metric
  // slabs to their steady-state capacity.
  for (int i = 0; i < 64; i++) {
    fill();
    t.SendMany(batch.data(), batch.size());
  }

  constexpr int kMessagesPerIter = 3;
  constexpr int kIters = 256;
  int64_t before = t_alloc_count;
  for (int i = 0; i < kIters; i++) {
    fill();
    t.SendMany(batch.data(), batch.size());
  }
  int64_t allocs = t_alloc_count - before;
  EXPECT_EQ(allocs, 0) << "encode/send path allocated " << allocs << " times over "
                       << kIters * kMessagesPerIter << " messages";

  for (ReplicaId r = 0; r < 3; r++) {
    EXPECT_TRUE(receivers[r].WaitForCount(64 + kIters)) << "replica " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(SteeringModes, UdpModeTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "DistinctPorts" : "ReuseportGroups";
                         });

TEST(UdpSteeringModeTest, ReuseportGroupsActiveOnThisKernel) {
  // The primary design — SO_REUSEPORT groups steered by cBPF — must engage
  // on any kernel this repo targets (>= 4.6); the distinct-port fallback is
  // for exotic sandboxes and is exercised explicitly by UdpModeTest.
  UdpTransport t;
  RecordingReceiver r;
  t.RegisterReplica(0, 0, &r);
  t.RegisterReplica(0, 1, &r);
  EXPECT_TRUE(t.reuseport_steering());
  // Group members share one port.
  EXPECT_EQ(t.PortOfForTesting(Address::Replica(0), 0),
            t.PortOfForTesting(Address::Replica(0), 1));
}

TEST(UdpSteeringModeTest, DistinctPortModeUsesOnePortPerCore) {
  UdpTransport::Options o;
  o.force_distinct_ports = true;
  UdpTransport t(o);
  RecordingReceiver r;
  t.RegisterReplica(0, 0, &r);
  t.RegisterReplica(0, 1, &r);
  EXPECT_FALSE(t.reuseport_steering());
  EXPECT_NE(t.PortOfForTesting(Address::Replica(0), 0),
            t.PortOfForTesting(Address::Replica(0), 1));
}

TEST(UdpTransportLifecycleTest, ReRegisterSwapsReceiverWithoutRebinding) {
  // Crash-restart drills re-register endpoints; the socket (and its slot in
  // the reuseport group join order) must survive, with traffic flowing to
  // the new receiver.
  UdpTransport t;
  RecordingReceiver old_r;
  RecordingReceiver new_r;
  t.RegisterReplica(0, 0, &old_r);
  uint16_t port = t.PortOfForTesting(Address::Replica(0), 0);
  t.UnregisterReplica(0, 0);
  t.RegisterReplica(0, 0, &new_r);
  EXPECT_EQ(t.PortOfForTesting(Address::Replica(0), 0), port);

  t.Send(MakeGet(1, Address::Replica(0), 0, 1, "k"));
  ASSERT_TRUE(new_r.WaitForCount(1));
  EXPECT_EQ(old_r.count.load(), 0u);
}

// --- Endpoint-coordinate range guards (satellite: EndpointKey aliasing) ----

TEST(EndpointKeyGuardTest, PackedKeysCannotAlias) {
  // core occupies the low 24 bits, id the next 32, kind the top byte: the
  // maximum in-range core must not collide with the next id.
  EXPECT_NE(PackEndpointKey(Address::Replica(0), (1u << 24) - 1),
            PackEndpointKey(Address::Replica(1), 0));
  EXPECT_NE(PackEndpointKey(Address::Client(5), 0), PackEndpointKey(Address::Replica(5), 0));
  EXPECT_EQ(PackEndpointKey(Address::Replica(3), 2),
            (1ull << 56) | (3ull << 24) | 2);
}

TEST(EndpointKeyGuardDeathTest, OutOfRangeCoreAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(PackEndpointKey(Address::Replica(1), 1u << 24), "core.*out of range");
}

TEST(EndpointKeyGuardDeathTest, UdpRegistrationChecksReplicaRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        UdpTransport t;
        RecordingReceiver r;
        t.RegisterReplica(UdpTransport::kMaxReplicas, 0, &r);
      },
      "replica id.*out of range");
}

TEST(EndpointKeyGuardDeathTest, UdpRegistrationChecksCoreRange) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        UdpTransport t;
        RecordingReceiver r;
        t.RegisterReplica(0, UdpTransport::kMaxCoresPerReplica, &r);
      },
      "core.*out of range");
}

}  // namespace
}  // namespace meerkat
