// End-to-end serializability tests.
//
// Two flavours:
//  * Simulator runs: hundreds of concurrent clients hammering a small hot
//    keyspace deterministically; every committed transaction is recorded and
//    the full history replayed by the checker.
//  * Threaded runs: real threads and real locks, including runs under message
//    drop/delay/duplication (Meerkat's asynchronous-network assumption).
//
// All four systems must produce one-copy-serializable histories on all seeds.

#include <gtest/gtest.h>

#include "src/workload/driver.h"
#include "src/workload/ycsb_t.h"
#include "tests/serializability_checker.h"
#include "tests/test_util.h"
#include "tests/zcp_conformance.h"

namespace meerkat {
namespace {

class SerializabilitySimTest
    : public ::testing::TestWithParam<std::tuple<SystemKind, double, uint64_t, bool>> {};

TEST_P(SerializabilitySimTest, HotKeyspaceHistoryIsSerializable) {
  auto [kind, theta, seed, cache_on] = GetParam();

  SystemOptions sys = DefaultOptions(kind, /*cores=*/4);
  if (cache_on) {
    // Adversarial cache configuration: leases far longer than the run so
    // every entry that CAN go stale DOES serve stale, and commit-time OCC
    // validation is the only thing standing between a stale read and a
    // committed violation (the checker would report it).
    sys.cache = CacheOptions().WithEnabled(true).WithLease(1'000'000'000);
  }
  Simulator sim(sys.cost);
  SimTransport transport(&sim);
  // Jitter reorders messages so replicas validate in different orders —
  // the adversarial case for decentralized OCC.
  transport.faults().SetMaxExtraDelay(3000);
  SimTimeSource time_source(&sim);
  auto system = CreateSystem(sys, &transport, &time_source);

  // Tiny keyspace = constant conflicts.
  YcsbTOptions y;
  y.num_keys = 16;
  y.zipf_theta = theta;
  y.key_size = 8;
  y.value_size = 8;
  YcsbTWorkload workload(y);

  SerializabilityChecker checker;
  workload.ForEachInitialKey([&](const std::string& key, const std::string& value) {
    system->Load(key, value);
    checker.RecordLoadedKey(key);
  });

  SimRunOptions run;
  run.num_clients = 24;
  run.warmup_ns = 0;
  run.measure_ns = 20'000'000;  // 20 ms of virtual time.
  run.seed = seed;
  run.load_initial_keys = false;

  // Closed loops wired manually so every commit routes through the checker.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  std::vector<Rng> rngs;
  struct Loop {
    ClientSession* session;
    Rng* rng;
    YcsbTWorkload* workload;
    SerializabilityChecker* checker;
    void Next() {
      session->ExecuteAsync(workload->NextTxn(*rng), [this](const TxnOutcome& outcome) {
        if (outcome.committed()) {
          checker->RecordCommit(*session);
        }
        Next();
      });
    }
  };
  std::vector<std::unique_ptr<Loop>> loops;
  for (size_t i = 0; i < run.num_clients; i++) {
    sessions.push_back(system->CreateSession(static_cast<uint32_t>(i + 1), seed * 131 + i));
    rngs.emplace_back(seed * 17 + i);
  }
  for (size_t i = 0; i < run.num_clients; i++) {
    auto loop = std::make_unique<Loop>();
    loop->session = sessions[i].get();
    loop->rng = &rngs[i];
    loop->workload = &workload;
    loop->checker = &checker;
    SimActor* actor = transport.ActorFor(Address::Client(static_cast<uint32_t>(i + 1)), 0);
    Loop* raw = loop.get();
    sim.Schedule(i * 70 + 1, actor, [raw](SimContext&) { raw->Next(); });
    loops.push_back(std::move(loop));
  }
  sim.Run(run.measure_ns);
  sim.Clear();

  ASSERT_GT(checker.CommittedCount(), 100u) << "history too small to be meaningful";
  std::vector<std::string> violations = checker.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(violations.empty()) << checker.CommittedCount() << " committed txns";
}

INSTANTIATE_TEST_SUITE_P(
    Contended, SerializabilitySimTest,
    ::testing::Combine(::testing::Values(SystemKind::kMeerkat, SystemKind::kMeerkatPb,
                                         SystemKind::kTapir, SystemKind::kKuaFu),
                       ::testing::Values(0.0, 0.9), ::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(false)));

// Cache-enabled re-run on the kinds that honor SystemOptions::cache. The
// stale-read safety argument (DESIGN.md §13) is only as good as validation:
// these cells prove a hot, constantly-stale shared cache never commits a
// stale read on any seed.
INSTANTIATE_TEST_SUITE_P(
    ContendedCacheEnabled, SerializabilitySimTest,
    ::testing::Combine(::testing::Values(SystemKind::kMeerkat, SystemKind::kTapir),
                       ::testing::Values(0.9), ::testing::Values<uint64_t>(1, 2, 3),
                       ::testing::Values(true)));

// Threaded runtime: real concurrency, optional fault injection.
struct ThreadedCase {
  SystemKind kind;
  double drop_probability;
  uint64_t max_extra_delay_ns;
  bool cache = false;
};

class SerializabilityThreadedTest : public ::testing::TestWithParam<ThreadedCase> {};

TEST_P(SerializabilityThreadedTest, ConcurrentHistoryIsSerializable) {
  ThreadedCase param = GetParam();
  SystemOptions sys = DefaultOptions(param.kind, /*cores=*/2);
  // Retries are required under drops.
  sys.retry = RetryPolicy::WithTimeout(3'000'000);  // 3 ms.
  if (param.cache) {
    sys.cache = CacheOptions().WithEnabled(true).WithLease(1'000'000'000);
  }

  ThreadedHarness h(sys);
  h.transport().faults().SetDropProbability(param.drop_probability);
  h.transport().faults().SetMaxExtraDelay(param.max_extra_delay_ns);
  h.transport().faults().SetDuplicateProbability(param.drop_probability / 2);

  YcsbTOptions y;
  y.num_keys = 12;
  y.zipf_theta = 0.0;
  y.key_size = 8;
  y.value_size = 8;
  YcsbTWorkload workload(y);

  SerializabilityChecker checker;
  workload.ForEachInitialKey([&](const std::string& key, const std::string& value) {
    h.system().Load(key, value);
    checker.RecordLoadedKey(key);
  });

  ThreadedRunOptions run;
  run.num_clients = 4;
  run.duration_ms = 300;
  run.seed = 42;
  run.load_initial_keys = false;
  run.on_txn_done = [&checker](ClientSession& session, const TxnOutcome& outcome) {
    if (outcome.committed()) {
      checker.RecordCommit(session);
    }
  };
  RunResult result = RunThreadedWorkload(h.system(), workload, run);

  EXPECT_GT(result.stats.committed, 20u);
  std::vector<std::string> violations = checker.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << v;
  }
  EXPECT_TRUE(violations.empty()) << checker.CommittedCount() << " committed txns";
}

INSTANTIATE_TEST_SUITE_P(
    Runs, SerializabilityThreadedTest,
    ::testing::Values(ThreadedCase{SystemKind::kMeerkat, 0.0, 0},
                      ThreadedCase{SystemKind::kMeerkat, 0.02, 500'000},
                      ThreadedCase{SystemKind::kTapir, 0.0, 0},
                      ThreadedCase{SystemKind::kMeerkatPb, 0.0, 0},
                      ThreadedCase{SystemKind::kKuaFu, 0.0, 0},
                      // Cache-enabled cells: a shared stale-prone cache under
                      // real threads, including message loss/delay/duplication
                      // (delayed GetReplies insert stale versions; validation
                      // must still keep every commit fresh).
                      ThreadedCase{SystemKind::kMeerkat, 0.0, 0, /*cache=*/true},
                      ThreadedCase{SystemKind::kMeerkat, 0.02, 500'000, /*cache=*/true},
                      ThreadedCase{SystemKind::kTapir, 0.0, 0, /*cache=*/true}),
    [](const ::testing::TestParamInfo<ThreadedCase>& info) {
      std::string name = ToString(info.param.kind);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      if (info.param.drop_probability > 0) {
        name += "_lossy";
      }
      if (info.param.cache) {
        name += "_cache";
      }
      return name;
    });

}  // namespace
}  // namespace meerkat
