// Unit tests for the storage layer: vstore, the OCC validation truth table
// (Algorithm 1), the write phase (Thomas write rule), and the trecord.

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/store/occ.h"
#include "src/store/trecord.h"
#include "src/store/vstore.h"

namespace meerkat {
namespace {

Timestamp Ts(uint64_t t, uint32_t c = 1) { return Timestamp{t, c}; }

TEST(VStoreTest, ReadMissingKey) {
  VStore store;
  ReadResult r = store.Read("nope");
  EXPECT_FALSE(r.found);
}

TEST(VStoreTest, LoadAndRead) {
  VStore store;
  store.LoadKey("k", "v", Ts(5));
  ReadResult r = store.Read("k");
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "v");
  EXPECT_EQ(r.wts, Ts(5));
}

TEST(VStoreTest, LoadIsThomasGuarded) {
  VStore store;
  store.LoadKey("k", "new", Ts(10));
  store.LoadKey("k", "old", Ts(5));  // Must not roll back.
  EXPECT_EQ(store.Read("k").value, "new");
  EXPECT_EQ(store.Read("k").wts, Ts(10));
}

TEST(VStoreTest, FindVsFindOrCreate) {
  VStore store;
  EXPECT_EQ(store.Find("k"), nullptr);
  KeyEntry* e = store.FindOrCreate("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(store.Find("k"), e);
  EXPECT_EQ(store.FindOrCreate("k"), e);
  // Entry exists but no committed version: reads miss.
  EXPECT_FALSE(store.Read("k").found);
}

TEST(VStoreTest, EntryPointersStableAcrossInserts) {
  VStore store(4);
  KeyEntry* first = store.FindOrCreate("stable");
  for (int i = 0; i < 10000; i++) {
    store.FindOrCreate("k" + std::to_string(i));
  }
  EXPECT_EQ(store.Find("stable"), first);
}

TEST(VStoreTest, ClearPendingAll) {
  VStore store;
  KeyEntry* e = store.FindOrCreate("k");
  e->readers.push_back(Ts(3));
  e->writers.push_back(Ts(4));
  store.ClearPendingAll();
  EXPECT_TRUE(e->readers.empty());
  EXPECT_TRUE(e->writers.empty());
}

TEST(VStoreTest, ForEachCommittedSkipsUncommitted) {
  VStore store;
  store.LoadKey("a", "1", Ts(2));
  store.FindOrCreate("pending-only");
  int count = 0;
  store.ForEachCommitted([&](const std::string& key, const std::string& value, Timestamp wts) {
    EXPECT_EQ(key, "a");
    EXPECT_EQ(value, "1");
    EXPECT_EQ(wts, Ts(2));
    count++;
  });
  EXPECT_EQ(count, 1);
}

TEST(KeyEntryTest, MinWriterMaxReader) {
  KeyEntry e;
  EXPECT_FALSE(e.MinWriter().Valid());
  EXPECT_FALSE(e.MaxReader().Valid());
  e.writers = {Ts(5), Ts(3), Ts(9)};
  e.readers = {Ts(2), Ts(7), Ts(4)};
  EXPECT_EQ(e.MinWriter(), Ts(3));
  EXPECT_EQ(e.MaxReader(), Ts(7));
  e.RemoveWriter(Ts(3));
  EXPECT_EQ(e.MinWriter(), Ts(5));
  e.RemoveReader(Ts(7));
  EXPECT_EQ(e.MaxReader(), Ts(4));
  e.RemoveReader(Ts(999));  // No-op.
  EXPECT_EQ(e.readers.size(), 2u);
}

// --- Algorithm 1 truth table ---

class OccFixture : public ::testing::Test {
 protected:
  void SetUp() override { store_.LoadKey("k", "v0", Ts(10)); }

  std::vector<ReadSetEntry> Reads(Timestamp read_wts) { return {{"k", read_wts}}; }
  std::vector<WriteSetEntry> Writes() { return {{"k", "v1"}}; }

  VStore store_;
};

TEST_F(OccFixture, CleanReadValidates) {
  EXPECT_EQ(OccValidate(store_, Reads(Ts(10)), {}, Ts(20)), TxnStatus::kValidatedOk);
  EXPECT_EQ(store_.Find("k")->readers.size(), 1u);
}

TEST_F(OccFixture, StaleReadAborts) {
  // Read version 5, but committed version is 10: e.wts > r.wts.
  EXPECT_EQ(OccValidate(store_, Reads(Ts(5)), {}, Ts(20)), TxnStatus::kValidatedAbort);
  EXPECT_TRUE(store_.Find("k")->readers.empty());
}

TEST_F(OccFixture, ReadAbortsWhenPendingEarlierWriterExists) {
  // A pending writer at ts 15 would invalidate a read serialized at 20.
  store_.Find("k")->writers.push_back(Ts(15));
  EXPECT_EQ(OccValidate(store_, Reads(Ts(10)), {}, Ts(20)), TxnStatus::kValidatedAbort);
}

TEST_F(OccFixture, ReadOkWhenPendingWriterIsLater) {
  // Pending writer at 30 does not affect a read at 20: MIN(writers) > ts.
  store_.Find("k")->writers.push_back(Ts(30));
  EXPECT_EQ(OccValidate(store_, Reads(Ts(10)), {}, Ts(20)), TxnStatus::kValidatedOk);
}

TEST_F(OccFixture, WriteAbortsUnderCommittedRead) {
  // rts = 25 means someone read version 10 at time 25; a write at 20 would
  // interpose under that read.
  store_.Find("k")->rts = Ts(25);
  EXPECT_EQ(OccValidate(store_, {}, Writes(), Ts(20)), TxnStatus::kValidatedAbort);
  EXPECT_TRUE(store_.Find("k")->writers.empty());
}

TEST_F(OccFixture, WriteAbortsUnderPendingRead) {
  store_.Find("k")->readers.push_back(Ts(25));
  EXPECT_EQ(OccValidate(store_, {}, Writes(), Ts(20)), TxnStatus::kValidatedAbort);
}

TEST_F(OccFixture, WriteOkOverEarlierReads) {
  store_.Find("k")->rts = Ts(15);
  store_.Find("k")->readers.push_back(Ts(18));
  EXPECT_EQ(OccValidate(store_, {}, Writes(), Ts(20)), TxnStatus::kValidatedOk);
  EXPECT_EQ(store_.Find("k")->writers.size(), 1u);
}

TEST_F(OccFixture, RmwDoesNotConflictWithItself) {
  // Same transaction reads and writes k: its own reader registration must not
  // abort its write (ts < ts is false).
  EXPECT_EQ(OccValidate(store_, Reads(Ts(10)), Writes(), Ts(20)), TxnStatus::kValidatedOk);
  EXPECT_EQ(store_.Find("k")->readers.size(), 1u);
  EXPECT_EQ(store_.Find("k")->writers.size(), 1u);
}

TEST_F(OccFixture, AbortBacksOutAllRegistrations) {
  // Two reads; the second is stale, so the first's registration must be
  // backed out too.
  store_.LoadKey("k2", "x", Ts(10));
  std::vector<ReadSetEntry> reads = {{"k", Ts(10)}, {"k2", Ts(4)}};
  EXPECT_EQ(OccValidate(store_, reads, {}, Ts(20)), TxnStatus::kValidatedAbort);
  EXPECT_TRUE(store_.Find("k")->readers.empty());
  EXPECT_TRUE(store_.Find("k2")->readers.empty());
}

TEST_F(OccFixture, WriteAbortBacksOutReadRegistrations) {
  store_.Find("k")->rts = Ts(50);
  store_.LoadKey("k2", "x", Ts(10));
  std::vector<ReadSetEntry> reads = {{"k2", Ts(10)}};
  EXPECT_EQ(OccValidate(store_, reads, Writes(), Ts(20)), TxnStatus::kValidatedAbort);
  EXPECT_TRUE(store_.Find("k2")->readers.empty());
  EXPECT_TRUE(store_.Find("k")->writers.empty());
}

TEST_F(OccFixture, CommitInstallsAndCleans) {
  ASSERT_EQ(OccValidate(store_, Reads(Ts(10)), Writes(), Ts(20)), TxnStatus::kValidatedOk);
  OccCommit(store_, Reads(Ts(10)), Writes(), Ts(20));
  KeyEntry* e = store_.Find("k");
  EXPECT_EQ(e->value, "v1");
  EXPECT_EQ(e->wts, Ts(20));
  EXPECT_EQ(e->rts, Ts(20));
  EXPECT_TRUE(e->readers.empty());
  EXPECT_TRUE(e->writers.empty());
}

TEST_F(OccFixture, CommitRespectsThomasWriteRule) {
  // A newer version (30) is already installed; committing an older write (20)
  // must clean up but not install.
  store_.LoadKey("k", "newer", Ts(30));
  ASSERT_EQ(OccValidate(store_, {}, Writes(), Ts(20)), TxnStatus::kValidatedOk);
  OccCommit(store_, {}, Writes(), Ts(20));
  EXPECT_EQ(store_.Find("k")->value, "newer");
  EXPECT_EQ(store_.Find("k")->wts, Ts(30));
  EXPECT_TRUE(store_.Find("k")->writers.empty());
}

TEST_F(OccFixture, CommitIsIdempotent) {
  ASSERT_EQ(OccValidate(store_, {}, Writes(), Ts(20)), TxnStatus::kValidatedOk);
  OccCommit(store_, {}, Writes(), Ts(20));
  OccCommit(store_, {}, Writes(), Ts(20));
  EXPECT_EQ(store_.Find("k")->wts, Ts(20));
  EXPECT_TRUE(store_.Find("k")->writers.empty());
}

TEST_F(OccFixture, CleanupRemovesWithoutInstalling) {
  ASSERT_EQ(OccValidate(store_, Reads(Ts(10)), Writes(), Ts(20)), TxnStatus::kValidatedOk);
  OccCleanup(store_, Reads(Ts(10)), Writes(), Ts(20));
  KeyEntry* e = store_.Find("k");
  EXPECT_EQ(e->value, "v0");
  EXPECT_EQ(e->wts, Ts(10));
  EXPECT_TRUE(e->readers.empty());
  EXPECT_TRUE(e->writers.empty());
}

TEST_F(OccFixture, CommitBumpsRtsMonotonically) {
  store_.Find("k")->rts = Ts(40);
  OccCommit(store_, Reads(Ts(10)), {}, Ts(20));
  EXPECT_EQ(store_.Find("k")->rts, Ts(40));  // Not rolled back.
}

TEST_F(OccFixture, RevalidateCommittedOnly) {
  EXPECT_EQ(OccRevalidateCommittedOnly(store_, Reads(Ts(10)), {}, Ts(20)),
            TxnStatus::kValidatedOk);
  EXPECT_EQ(OccRevalidateCommittedOnly(store_, Reads(Ts(5)), {}, Ts(20)),
            TxnStatus::kValidatedAbort);
  store_.Find("k")->rts = Ts(25);
  EXPECT_EQ(OccRevalidateCommittedOnly(store_, {}, Writes(), Ts(20)),
            TxnStatus::kValidatedAbort);
  // Unknown keys are fine (read of absent key is still current).
  EXPECT_EQ(OccRevalidateCommittedOnly(store_, {{"ghost", kInvalidTimestamp}}, {}, Ts(20)),
            TxnStatus::kValidatedOk);
}

TEST_F(OccFixture, ConflictingPairCannotBothValidate) {
  // The pairwise-conflict property Meerkat's correctness rests on (§5.4):
  // whichever of a conflicting (RMW, RMW) pair validates second must abort.
  auto reads = Reads(Ts(10));
  auto writes = Writes();
  ASSERT_EQ(OccValidate(store_, reads, writes, Ts(20)), TxnStatus::kValidatedOk);
  EXPECT_EQ(OccValidate(store_, reads, writes, Ts(21)), TxnStatus::kValidatedAbort);
  EXPECT_EQ(OccValidate(store_, reads, writes, Ts(19)), TxnStatus::kValidatedAbort);
}

// Property sweep: for random interleavings of two transactions on one key,
// at most one of a conflicting pair commits, for all timestamp orders.
class OccPairTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OccPairTest, AtMostOneOfConflictingPairCommits) {
  // Equal times are still distinct timestamps (client ids 1 vs 2 break ties).
  auto [t1, t2] = GetParam();
  VStore store;
  store.LoadKey("k", "v0", Ts(10));
  Timestamp read_version = Ts(10);
  std::vector<ReadSetEntry> reads = {{"k", read_version}};
  std::vector<WriteSetEntry> writes = {{"k", "w"}};

  TxnStatus s1 = OccValidate(store, reads, writes, Ts(static_cast<uint64_t>(t1), 1));
  TxnStatus s2 = OccValidate(store, reads, writes, Ts(static_cast<uint64_t>(t2), 2));
  EXPECT_FALSE(s1 == TxnStatus::kValidatedOk && s2 == TxnStatus::kValidatedOk)
      << "both validated at ts " << t1 << " and " << t2;
}

INSTANTIATE_TEST_SUITE_P(TimestampGrid, OccPairTest,
                         ::testing::Combine(::testing::Values(20, 30, 40),
                                            ::testing::Values(20, 30, 40)));

// --- trecord ---

TEST(TRecordTest, GetOrCreateFindErase) {
  TRecordPartition part;
  TxnId tid{1, 1};
  EXPECT_EQ(part.Find(tid), nullptr);
  TxnRecord& rec = part.GetOrCreate(tid);
  EXPECT_EQ(rec.tid, tid);
  EXPECT_EQ(part.Find(tid), &rec);
  EXPECT_EQ(part.Size(), 1u);
  part.Erase(tid);
  EXPECT_EQ(part.Find(tid), nullptr);
}

TEST(TRecordTest, PartitioningByCore) {
  TRecord trecord(4);
  EXPECT_EQ(trecord.NumPartitions(), 4u);
  trecord.Partition(0).GetOrCreate(TxnId{1, 1});
  trecord.Partition(1).GetOrCreate(TxnId{1, 2});
  trecord.Partition(5).GetOrCreate(TxnId{1, 3});  // Wraps to partition 1.
  EXPECT_EQ(trecord.Partition(0).Size(), 1u);
  EXPECT_EQ(trecord.Partition(1).Size(), 2u);
  EXPECT_EQ(trecord.TotalSize(), 3u);
}

TEST(TRecordTest, SnapshotRoundTripsThroughReplace) {
  TRecord trecord(2);
  TxnRecord& rec = trecord.Partition(1).GetOrCreate(TxnId{7, 42});
  rec.ts = Ts(99, 7);
  rec.status = TxnStatus::kValidatedOk;
  rec.view = 3;
  rec.accept_view = 2;
  rec.accepted = true;
  rec.sets = MakeTxnSets({{"a", Ts(1)}}, {{"b", "v"}});

  std::vector<TxnRecordSnapshot> snaps = trecord.SnapshotAll();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].core, 1u);
  EXPECT_EQ(snaps[0].ts, Ts(99, 7));
  EXPECT_TRUE(snaps[0].accepted);

  TRecord other(2);
  other.ReplaceAll(snaps);
  TxnRecord* restored = other.Partition(1).Find(TxnId{7, 42});
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(restored->read_set().size(), 1u);
  EXPECT_EQ(restored->write_set()[0].value, "v");
  // Core-0 partition untouched.
  EXPECT_EQ(other.Partition(0).Size(), 0u);
}

TEST(TRecordTest, TrimFinalizedSkipsMetricWritesWhenNothingTrims) {
  const uint64_t before_trimmed = SnapshotMetrics().CounterValue("trecord.records_trimmed");
  const int64_t before_live = SnapshotMetrics().GaugeValue("trecord.live_records");
  TRecordPartition part;
  TxnRecord& rec = part.GetOrCreate(TxnId{21, 1});
  rec.ts = Ts(100, 21);
  rec.status = TxnStatus::kCommitted;
  // Watermark below every record: nothing trims, and the zero-trim pass must
  // not touch the counter or the gauge (hot maintenance loop, cold metrics).
  EXPECT_EQ(part.TrimFinalized(Ts(50, 1)), 0u);
  EXPECT_EQ(SnapshotMetrics().CounterValue("trecord.records_trimmed"), before_trimmed);
  EXPECT_EQ(SnapshotMetrics().GaugeValue("trecord.live_records"), before_live + 1);
  part.Clear();  // Rebalance the global gauge for other tests.
}

TEST(TRecordTest, ClearAccountsBulkChurn) {
  const uint64_t before_cleared = SnapshotMetrics().CounterValue("trecord.records_cleared");
  const int64_t before_live = SnapshotMetrics().GaugeValue("trecord.live_records");
  TRecordPartition part;
  part.GetOrCreate(TxnId{22, 1});
  part.GetOrCreate(TxnId{22, 2});
  part.GetOrCreate(TxnId{22, 3});
  part.Clear();
  // Bulk drops count as churn and bring the live gauge back to balance, so
  // created - erased - trimmed - cleared keeps matching the gauge.
  EXPECT_EQ(SnapshotMetrics().CounterValue("trecord.records_cleared"), before_cleared + 3);
  EXPECT_EQ(SnapshotMetrics().GaugeValue("trecord.live_records"), before_live);
  // Clearing an already-empty partition writes no metrics.
  part.Clear();
  EXPECT_EQ(SnapshotMetrics().CounterValue("trecord.records_cleared"), before_cleared + 3);
}

}  // namespace
}  // namespace meerkat
