// MetricsRegistry and trace-ring tests: registration idempotence, cross-
// thread summation, gauge arithmetic, JSON rendering, and the torn-snapshot
// stress that the CI TSan job runs — snapshots racing recorders must be
// data-race-free and counter totals monotone.

#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/trace.h"

namespace meerkat {
namespace {

// Registered at static init, mirroring how production code registers metrics
// (file-local const MetricId). This guarantees these ids exist before the
// CapacityOverflow test can exhaust the registry, whatever gtest's order.
const MetricId kTestCounter = MetricsRegistry::Counter("test.counter");
const MetricId kTestGauge = MetricsRegistry::Gauge("test.gauge");
const MetricId kTestHist = MetricsRegistry::Histogram("test.hist");
const MetricId kStressCounter = MetricsRegistry::Counter("test.stress_counter");
const MetricId kStressGauge = MetricsRegistry::Gauge("test.stress_gauge");

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricId again = MetricsRegistry::Counter("test.counter");
  EXPECT_TRUE(again.valid());
  EXPECT_EQ(again.index, kTestCounter.index);

  MetricId gauge_again = MetricsRegistry::Gauge("test.gauge");
  EXPECT_EQ(gauge_again.index, kTestGauge.index);

  MetricId hist_again = MetricsRegistry::Histogram("test.hist");
  EXPECT_EQ(hist_again.index, kTestHist.index);

  // Distinct names get distinct ids within a kind.
  MetricId other = MetricsRegistry::Counter("test.counter_other");
  ASSERT_TRUE(other.valid());
  EXPECT_NE(other.index, kTestCounter.index);
}

TEST(MetricsRegistryTest, InvalidIdRecordingIsANoOp) {
  MetricsSnapshot before = SnapshotMetrics(false);
  MetricIncr(MetricId{}, 100);
  MetricGaugeAdd(MetricId{}, -100);
  MetricRecordValue(MetricId{}, 100);
  MetricsSnapshot after = SnapshotMetrics(false);
  EXPECT_EQ(before.counters, after.counters);
  EXPECT_EQ(before.gauges, after.gauges);
}

TEST(MetricsRegistryTest, CountersSumAcrossThreads) {
  uint64_t base = SnapshotMetrics(false).CounterValue("test.counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; i++) {
        MetricIncr(kTestCounter);
      }
      MetricIncr(kTestCounter, 10);
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(SnapshotMetrics(false).CounterValue("test.counter"), base + 4 * 1010);
}

TEST(MetricsRegistryTest, GaugeDeltasSumToLiveCount) {
  int64_t base = SnapshotMetrics(false).GaugeValue("test.gauge");
  // One thread "inserts" 50, another "erases" 30 of them: the global live
  // count is the cross-thread sum even though neither thread saw both sides.
  std::thread inserter([] { MetricGaugeAdd(kTestGauge, 50); });
  inserter.join();
  std::thread eraser([] { MetricGaugeAdd(kTestGauge, -30); });
  eraser.join();
  EXPECT_EQ(SnapshotMetrics(false).GaugeValue("test.gauge"), base + 20);
}

TEST(MetricsRegistryTest, HistogramMergesAcrossThreads) {
  std::thread low([] { MetricRecordValue(kTestHist, 1000); });
  low.join();
  std::thread high([] { MetricRecordValue(kTestHist, 1'000'000); });
  high.join();
  MetricsSnapshot snap = SnapshotMetrics(false);
  auto it = snap.histograms.find("test.hist");
  ASSERT_NE(it, snap.histograms.end());
  EXPECT_GE(it->second.Count(), 2u);
  EXPECT_LE(it->second.MinNanos(), 1000u);
  EXPECT_GE(it->second.MaxNanos(), 1'000'000u);
}

TEST(MetricsRegistryTest, SnapshotFoldsFastPathCounters) {
  MetricsSnapshot snap = SnapshotMetrics(true);
  EXPECT_NE(snap.counters.find("fastpath.vstore_fast_reads"), snap.counters.end());
  MetricsSnapshot bare = SnapshotMetrics(false);
  EXPECT_EQ(bare.counters.find("fastpath.vstore_fast_reads"), bare.counters.end());
}

TEST(MetricsRegistryTest, ToJsonRendersEveryKindWellFormed) {
  MetricIncr(kTestCounter);
  MetricGaugeAdd(kTestGauge, 1);
  MetricRecordValue(kTestHist, 5000);
  std::string json = SnapshotMetrics(false).ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\": {\"count\""), std::string::npos);
  // Balanced braces => no truncated fragment.
  int depth = 0;
  for (char c : json) {
    if (c == '{') depth++;
    if (c == '}') depth--;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, MissingNamesReadAsZero) {
  MetricsSnapshot snap = SnapshotMetrics(false);
  EXPECT_EQ(snap.CounterValue("test.never_registered"), 0u);
  EXPECT_EQ(snap.GaugeValue("test.never_registered"), 0);
}

TEST(MetricsRegistryTest, CapacityOverflowYieldsInvalidIdNotCorruption) {
  // Exhaust the gauge registry (the smallest). Ids handed out before the
  // overflow — including the static-init ones above — must keep working.
  MetricId last_valid{};
  MetricId overflowed{};
  for (size_t i = 0; i < MetricsRegistry::kMaxGauges + 4; i++) {
    MetricId id = MetricsRegistry::Gauge("test.overflow_gauge_" + std::to_string(i));
    if (id.valid()) {
      last_valid = id;
    } else {
      overflowed = id;
    }
  }
  EXPECT_FALSE(overflowed.valid());
  ASSERT_TRUE(last_valid.valid());

  int64_t base = SnapshotMetrics(false).GaugeValue("test.gauge");
  MetricGaugeAdd(overflowed, 1000);  // Dropped, not written anywhere.
  MetricGaugeAdd(kTestGauge, 7);     // Pre-overflow id still lands.
  EXPECT_EQ(SnapshotMetrics(false).GaugeValue("test.gauge"), base + 7);
}

// The TSan target: recorder threads spin on counter/gauge records while the
// main thread snapshots mid-flight. Torn totals are expected; data races and
// non-monotone counter totals are not.
TEST(MetricsRegistryTest, TornSnapshotStressIsMonotoneAndRaceFree) {
  uint64_t counter_base = SnapshotMetrics(false).CounterValue("test.stress_counter");
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 200'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (uint64_t i = 0; i < kPerThread; i++) {
        MetricIncr(kStressCounter);
        MetricGaugeAdd(kStressGauge, 1);
        MetricGaugeAdd(kStressGauge, -1);
      }
    });
  }
  go.store(true, std::memory_order_release);

  uint64_t last = counter_base;
  for (int i = 0; i < 50; i++) {
    uint64_t now = SnapshotMetrics(false).CounterValue("test.stress_counter");
    EXPECT_GE(now, last) << "counter total went backwards across snapshots";
    last = now;
  }
  for (auto& th : threads) {
    th.join();
  }
  MetricsSnapshot final_snap = SnapshotMetrics(false);
  EXPECT_EQ(final_snap.CounterValue("test.stress_counter"),
            counter_base + kThreads * kPerThread);
  // Every +1 was paired with a -1, so quiescent gauge total is unchanged.
  EXPECT_EQ(final_snap.GaugeValue("test.stress_gauge"), 0);
}

#if MEERKAT_TRACE

TEST(TraceRingTest, CollectFiltersByTxnAndSortsByTime) {
  ResetTraces();
  TxnId mine{7, 100};
  TxnId other{8, 200};
  TraceRecord(mine, TraceStep::kTxnStart, 3);
  TraceRecord(other, TraceStep::kTxnStart, 1);
  TraceRecord(mine, TraceStep::kValidateSent, 3);
  TraceRecord(mine, TraceStep::kTxnCommitted, 1);

  std::vector<TraceEvent> events = CollectTrace(mine);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].step, TraceStep::kTxnStart);
  EXPECT_EQ(events[1].step, TraceStep::kValidateSent);
  EXPECT_EQ(events[2].step, TraceStep::kTxnCommitted);
  for (size_t i = 1; i < events.size(); i++) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
    EXPECT_EQ(events[i].tid.client_id, mine.client_id);
    EXPECT_EQ(events[i].tid.seq, mine.seq);
  }
}

TEST(TraceRingTest, CollectSpansThreads) {
  ResetTraces();
  TxnId tid{9, 1};
  TraceRecord(tid, TraceStep::kValidateSent);
  std::thread replica([&tid] { TraceRecord(tid, TraceStep::kValidateReply, 2); });
  replica.join();
  std::vector<TraceEvent> events = CollectTrace(tid);
  EXPECT_EQ(events.size(), 2u);
}

TEST(TraceRingTest, RingOverwritesOldestKeepsNewest) {
  ResetTraces();
  TxnId tid{10, 1};
  // Far more events than one ring holds; the newest must survive.
  for (uint32_t i = 0; i < 10000; i++) {
    TraceRecord(tid, TraceStep::kGetSent, i);
  }
  std::vector<TraceEvent> events = CollectTrace(tid);
  ASSERT_FALSE(events.empty());
  EXPECT_LT(events.size(), 10000u);
  EXPECT_EQ(events.back().arg, 9999u);
}

TEST(TraceRingTest, FormatAndDumpAreWellFormed) {
  ResetTraces();
  TxnId tid{11, 42};
  TraceRecord(tid, TraceStep::kTxnAborted, 2);
  std::vector<TraceEvent> events = CollectTrace(tid);
  ASSERT_EQ(events.size(), 1u);
  std::string line = events[0].Format();
  EXPECT_NE(line.find("TXN_ABORTED"), std::string::npos);
  EXPECT_NE(line.find("11"), std::string::npos);

  // Dumps must not crash on empty or populated rings.
  FILE* sink = fopen("/dev/null", "w");
  ASSERT_NE(sink, nullptr);
  DumpRecentTraces(sink, 16);
  DumpTraceForTxn(tid, sink);
  ResetTraces();
  DumpRecentTraces(sink, 16);
  fclose(sink);
}

#endif  // MEERKAT_TRACE

}  // namespace
}  // namespace meerkat
