// Tests for the runtime DAP violation detector (src/common/dap_check.h):
// planted cross-core accesses must be reported, sanctioned patterns
// (own-partition access, unbound inspection, suspended maintenance) must not.

#include "src/common/dap_check.h"

#include <thread>

#include <gtest/gtest.h>

#include "src/store/trecord.h"

namespace meerkat {
namespace {

#if MEERKAT_DAP_CHECK

class DapCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DapAudit::SetMode(DapMode::kCount);
    DapAudit::ResetViolations();
  }
  void TearDown() override {
    DapAudit::SetMode(DapMode::kCount);
    DapAudit::ResetViolations();
  }
};

TxnId Tid(uint64_t seq) { return TxnId{7, seq}; }

TEST_F(DapCheckTest, OwnPartitionAccessUnderScopeIsClean) {
  TRecord trecord(4);
  for (uint32_t core = 0; core < 4; core++) {
    DapCoreScope scope(core);
    trecord.Partition(core).GetOrCreate(Tid(core));
    trecord.Partition(core).Find(Tid(core));
  }
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, CrossPartitionAccessUnderScopeIsReported) {
  TRecord trecord(4);
  DapCoreScope scope(0);
  trecord.Partition(1).GetOrCreate(Tid(1));
  EXPECT_EQ(DapAudit::violations(), 1u);
  trecord.Partition(2).Find(Tid(2));
  trecord.Partition(3).Erase(Tid(3));
  EXPECT_EQ(DapAudit::violations(), 3u);
}

TEST_F(DapCheckTest, ScopeMapsCoresModuloPartitionCount) {
  // Partition() wraps core ids; the detector must use the same modulo, so
  // core 5 of a 4-partition trecord legally touches partition 1.
  TRecord trecord(4);
  DapCoreScope scope(5);
  trecord.Partition(5).GetOrCreate(Tid(5));
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, ScopesNestAndRestore) {
  TRecord trecord(2);
  DapCoreScope outer(0);
  {
    DapCoreScope inner(1);
    EXPECT_EQ(DapCoreScope::CurrentCore(), 1);
    trecord.Partition(1).GetOrCreate(Tid(1));
  }
  EXPECT_EQ(DapCoreScope::CurrentCore(), 0);
  trecord.Partition(0).GetOrCreate(Tid(0));
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, UnscopedUnboundAccessIsExempt) {
  // Quiesced inspection from a test main thread: neither scoped nor bound,
  // so touching every partition is not a violation.
  TRecord trecord(4);
  for (uint32_t core = 0; core < 4; core++) {
    trecord.Partition(core).GetOrCreate(Tid(core));
  }
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, SuspendSilencesChecks) {
  TRecord trecord(4);
  DapCoreScope scope(0);
  {
    DapAuditSuspend suspend;
    trecord.Partition(3).GetOrCreate(Tid(3));  // Would violate unsuspended.
  }
  EXPECT_EQ(DapAudit::violations(), 0u);
  trecord.Partition(3).Find(Tid(3));
  EXPECT_EQ(DapAudit::violations(), 1u);
}

TEST_F(DapCheckTest, OffModeDisablesChecks) {
  DapAudit::SetMode(DapMode::kOff);
  TRecord trecord(4);
  DapCoreScope scope(0);
  trecord.Partition(1).GetOrCreate(Tid(1));
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, TwoBoundThreadsOnSamePartitionIsReported) {
  TRecord trecord(2);
  // First bound thread stamps partition 0.
  std::thread t1([&] {
    DapAudit::BindCurrentThread();
    trecord.Partition(0).GetOrCreate(Tid(1));
  });
  t1.join();
  EXPECT_EQ(DapAudit::violations(), 0u);
  // A different bound thread touching the same partition is the violation.
  std::thread t2([&] {
    DapAudit::BindCurrentThread();
    trecord.Partition(0).Find(Tid(1));
  });
  t2.join();
  EXPECT_EQ(DapAudit::violations(), 1u);
}

TEST_F(DapCheckTest, BoundThreadsOnDistinctPartitionsAreClean) {
  TRecord trecord(2);
  std::thread t1([&] {
    DapAudit::BindCurrentThread();
    trecord.Partition(0).GetOrCreate(Tid(1));
  });
  std::thread t2([&] {
    DapAudit::BindCurrentThread();
    trecord.Partition(1).GetOrCreate(Tid(2));
  });
  t1.join();
  t2.join();
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, ClearResetsOwnerStamp) {
  TRecord trecord(1);
  std::thread t1([&] {
    DapAudit::BindCurrentThread();
    trecord.Partition(0).GetOrCreate(Tid(1));
  });
  t1.join();
  // Recovery wipes the partition; the next bound thread becomes the owner.
  trecord.Partition(0).Clear();
  std::thread t2([&] {
    DapAudit::BindCurrentThread();
    trecord.Partition(0).GetOrCreate(Tid(2));
  });
  t2.join();
  EXPECT_EQ(DapAudit::violations(), 0u);
}

TEST_F(DapCheckTest, BulkMaintenanceEntryPointsAreSuspended) {
  // ReplaceAll / TrimFinalizedAll walk every partition from one thread; they
  // must not trip the detector even inside a foreign core scope.
  TRecord trecord(4);
  for (uint32_t core = 0; core < 4; core++) {
    DapCoreScope scope(core);
    TxnRecord& rec = trecord.Partition(core).GetOrCreate(Tid(core));
    rec.status = TxnStatus::kCommitted;
    rec.ts = Timestamp{100, 1};
  }
  DapCoreScope scope(0);
  EXPECT_EQ(trecord.TrimFinalizedAll(Timestamp{200, 1}), 4u);
  trecord.ReplaceAll({});
  EXPECT_EQ(DapAudit::violations(), 0u);
}

#if defined(GTEST_HAS_DEATH_TEST) && GTEST_HAS_DEATH_TEST
TEST_F(DapCheckTest, AbortModeAborts) {
  TRecord trecord(2);
  EXPECT_DEATH(
      {
        DapAudit::SetMode(DapMode::kAbort);
        DapCoreScope scope(0);
        trecord.Partition(1).GetOrCreate(Tid(1));
      },
      "DAP violation");
}
#endif

#else  // !MEERKAT_DAP_CHECK

TEST(DapCheckTest, CompiledOutStubsAreInert) {
  TRecord trecord(2);
  DapCoreScope scope(0);
  trecord.Partition(1).GetOrCreate(TxnId{7, 1});
  EXPECT_EQ(DapAudit::violations(), 0u);
}

#endif  // MEERKAT_DAP_CHECK

}  // namespace
}  // namespace meerkat
