// One-copy-serializability checker for timestamp-serialized systems.
//
// Every system in this repository serializes committed transactions by their
// commit timestamp (Meerkat/TAPIR/Meerkat-PB: client-proposed; KuaFu++:
// counter-derived). That yields a strong checkable invariant:
//
//   Replay all committed transactions in commit-timestamp order against a
//   model store that records, per key, the timestamp of the last write.
//   Every committed read of key K with recorded version V must satisfy
//   V == model[K] at the reader's position in the replay.
//
// Why exact equality is sound (and not too strict): suppose committed reader
// R (ts_R) recorded version V but a committed writer W (V < ts_W < ts_R)
// exists. R and W each validated at a majority; by quorum intersection some
// replica validated both. If it validated W first, R's read check fails
// (e.wts = ts_W > V). If it validated R first, W's write check fails
// (ts_W < MAX(readers) = ts_R or ts_W < rts). Either way the later one
// aborts — so no such pair of commits can exist, and any mismatch found by
// the replay is a real serializability violation.

#ifndef MEERKAT_TESTS_SERIALIZABILITY_CHECKER_H_
#define MEERKAT_TESTS_SERIALIZABILITY_CHECKER_H_

#include <algorithm>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/api/client_session.h"
#include "src/common/types.h"

namespace meerkat {

class SerializabilityChecker {
 public:
  struct CommittedTxn {
    TxnId tid;
    Timestamp ts;
    std::vector<ReadSetEntry> reads;
    std::vector<WriteSetEntry> writes;
  };

  // Thread-safe: may be called concurrently from client worker threads.
  void RecordCommit(const ClientSession& session) {
    CommittedTxn txn;
    txn.tid = session.last_tid();
    txn.ts = session.last_commit_ts();
    txn.reads = session.last_read_set();
    txn.writes = session.last_write_set();
    std::lock_guard<std::mutex> lock(mu_);
    txns_.push_back(std::move(txn));
  }

  // Seeds the model with bulk-loaded keys (version {1, 0}, matching
  // System::Load).
  void RecordLoadedKey(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    loaded_.push_back(key);
  }

  size_t CommittedCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return txns_.size();
  }

  // Replays and returns a list of violations (empty == serializable).
  std::vector<std::string> Check() const {
    std::vector<CommittedTxn> txns;
    std::map<std::string, Timestamp> model;
    {
      std::lock_guard<std::mutex> lock(mu_);
      txns = txns_;
      for (const std::string& key : loaded_) {
        model[key] = Timestamp{1, 0};
      }
    }
    std::sort(txns.begin(), txns.end(),
              [](const CommittedTxn& a, const CommittedTxn& b) { return a.ts < b.ts; });

    std::vector<std::string> violations;
    for (size_t i = 1; i < txns.size(); i++) {
      if (txns[i].ts == txns[i - 1].ts && !(txns[i].tid == txns[i - 1].tid)) {
        violations.push_back("duplicate commit timestamp " + txns[i].ts.ToString());
      }
    }
    for (const CommittedTxn& txn : txns) {
      for (const ReadSetEntry& read : txn.reads) {
        auto it = model.find(read.key);
        Timestamp current = it == model.end() ? kInvalidTimestamp : it->second;
        if (!(current == read.read_wts)) {
          violations.push_back("txn " + txn.tid.ToString() + " (ts " + txn.ts.ToString() +
                               ") read key '" + read.key + "' at version " +
                               read.read_wts.ToString() + " but serial order says " +
                               current.ToString());
        }
      }
      for (const WriteSetEntry& write : txn.writes) {
        Timestamp& current = model[write.key];
        if (txn.ts > current) {
          current = txn.ts;  // Thomas write rule, as in the real stores.
        }
      }
    }
    return violations;
  }

 private:
  mutable std::mutex mu_;
  std::vector<CommittedTxn> txns_;
  std::vector<std::string> loaded_;
};

}  // namespace meerkat

#endif  // MEERKAT_TESTS_SERIALIZABILITY_CHECKER_H_
