// Shared fixtures for driving the systems under the simulator and the
// threaded runtime from tests.

#ifndef MEERKAT_TESTS_TEST_UTIL_H_
#define MEERKAT_TESTS_TEST_UTIL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/api/system.h"
#include "src/sim/sim_time_source.h"
#include "src/sim/simulator.h"
#include "src/transport/sim_transport.h"
#include "src/transport/threaded_transport.h"
#include "src/transport/udp_transport.h"

namespace meerkat {

// Simulator-backed cluster of one system kind. Single-threaded and
// deterministic: ideal for protocol-level assertions.
class SimHarness {
 public:
  explicit SimHarness(const SystemOptions& options)
      : sim_(options.cost), transport_(&sim_), time_source_(&sim_) {
    system_ = CreateSystem(options, &transport_, &time_source_);
  }

  Simulator& sim() { return sim_; }
  SimTransport& transport() { return transport_; }
  System& system() { return *system_; }
  SimTimeSource& time_source() { return time_source_; }

  std::unique_ptr<ClientSession> MakeSession(uint32_t client_id, uint64_t seed = 1) {
    return system_->CreateSession(client_id, seed);
  }

  // Runs one transaction to completion (drains all resulting events,
  // including the asynchronous commit broadcast).
  TxnResult RunTxn(ClientSession& session, TxnPlan plan) {
    return RunTxnOutcome(session, std::move(plan)).result;
  }

  // Same, returning the full outcome (fault drills assert on path/reason/
  // retransmit counts, not just the result).
  TxnOutcome RunTxnOutcome(ClientSession& session, TxnPlan plan) {
    std::optional<TxnOutcome> outcome;
    SimActor* actor = transport_.ActorFor(Address::Client(session.client_id()), 0);
    sim_.Schedule(sim_.now() + 1, actor, [&](SimContext&) {
      session.ExecuteAsync(std::move(plan),
                           [&outcome](const TxnOutcome& o) { outcome = o; });
    });
    sim_.Run();
    return outcome.value_or(TxnOutcome{});
  }

  // Reads committed state directly from a replica's store.
  std::string ValueAt(ReplicaId r, const std::string& key) {
    ReadResult read = system_->ReadAtReplica(r, key);
    return read.found ? read.value : std::string();
  }

 private:
  Simulator sim_;
  SimTransport transport_;
  SimTimeSource time_source_;
  std::unique_ptr<System> system_;
};

// Threaded-runtime cluster (real threads, real locks).
class ThreadedHarness {
 public:
  explicit ThreadedHarness(const SystemOptions& options, uint64_t base_delay_ns = 0)
      : transport_(base_delay_ns) {
    system_ = CreateSystem(options, &transport_, &time_source_);
  }

  ~ThreadedHarness() { transport_.Stop(); }

  ThreadedTransport& transport() { return transport_; }
  System& system() { return *system_; }
  SystemTimeSource& time_source() { return time_source_; }

  std::unique_ptr<ClientSession> MakeSession(uint32_t client_id, uint64_t seed = 1) {
    return system_->CreateSession(client_id, seed);
  }

 private:
  ThreadedTransport transport_;
  SystemTimeSource time_source_;
  std::unique_ptr<System> system_;
};

// Loopback-UDP cluster (real sockets, real datagram loss). Same surface as
// ThreadedHarness so integration suites can run unchanged over the wire.
class UdpHarness {
 public:
  explicit UdpHarness(const SystemOptions& options,
                      UdpTransport::Options udp_options = UdpTransport::Options{})
      : transport_(udp_options) {
    system_ = CreateSystem(options, &transport_, &time_source_);
  }

  ~UdpHarness() { transport_.Stop(); }

  UdpTransport& transport() { return transport_; }
  System& system() { return *system_; }
  SystemTimeSource& time_source() { return time_source_; }

  std::unique_ptr<ClientSession> MakeSession(uint32_t client_id, uint64_t seed = 1) {
    return system_->CreateSession(client_id, seed);
  }

 private:
  UdpTransport transport_;
  SystemTimeSource time_source_;
  std::unique_ptr<System> system_;
};

inline SystemOptions DefaultOptions(SystemKind kind, size_t cores = 2, size_t replicas = 3) {
  SystemOptions options;
  options.kind = kind;
  options.quorum = QuorumConfig::ForReplicas(replicas);
  options.cores_per_replica = cores;
  return options;
}

}  // namespace meerkat

#endif  // MEERKAT_TESTS_TEST_UTIL_H_
