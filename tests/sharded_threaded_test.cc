// Distributed transactions on the threaded runtime: real threads, real
// locks, cross-shard invariant conservation under concurrency.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/protocol/sharded.h"
#include "src/transport/threaded_transport.h"

namespace meerkat {
namespace {

class ShardedThreadedFixture : public ::testing::Test {
 protected:
  ShardedThreadedFixture() {
    ShardedOptions options;
    options.num_shards = 2;
    options.system.quorum = QuorumConfig::ForReplicas(3);
    options.system.cores_per_replica = 2;
    options.system.retry = RetryPolicy::WithTimeout(3'000'000);
    cluster_ = std::make_unique<ShardedCluster>(options, &transport_);
  }

  ~ShardedThreadedFixture() override { transport_.Stop(); }

  // Blocking one-shot transaction through a fresh session.
  TxnResult Run(ShardedSession& session, TxnPlan plan) {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    TxnResult result = TxnResult::kFailed;
    // ExecuteAsync outside mu: the session locks itself, and the completion
    // callback takes mu while holding that lock (same order as
    // BlockingClient::Execute).
    session.ExecuteAsync(std::move(plan), [&](const TxnOutcome& o) {
      std::lock_guard<std::mutex> inner(mu);
      result = o.result;
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
    return result;
  }

  std::pair<std::string, std::string> CrossShardKeys() {
    std::string a = "alpha";
    for (int i = 0; i < 1000; i++) {
      std::string b = "beta" + std::to_string(i);
      if (cluster_->ShardForKey(b) != cluster_->ShardForKey(a)) {
        return {a, b};
      }
    }
    return {a, a};
  }

  ThreadedTransport transport_;
  SystemTimeSource time_source_;
  std::unique_ptr<ShardedCluster> cluster_;
};

TEST_F(ShardedThreadedFixture, CrossShardCommitOnRealThreads) {
  auto [a, b] = CrossShardKeys();
  cluster_->Load(a, "0");
  cluster_->Load(b, "0");
  ShardedSession session(1, &transport_, &time_source_, cluster_.get(), 7);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw(a, "1"));
  plan.ops.push_back(Op::Rmw(b, "1"));
  ASSERT_EQ(Run(session, plan), TxnResult::kCommit);
  EXPECT_EQ(session.last_shard_count(), 2u);
  transport_.DrainForTesting();
  EXPECT_EQ(cluster_->ReadAt(cluster_->ShardForKey(a), 0, a).value, "1");
  EXPECT_EQ(cluster_->ReadAt(cluster_->ShardForKey(b), 1, b).value, "1");
}

TEST_F(ShardedThreadedFixture, ConcurrentCrossShardTransfersConserveTotal) {
  auto [a, b] = CrossShardKeys();
  cluster_->Load(a, "1000");
  cluster_->Load(b, "1000");

  constexpr int kThreads = 3;
  std::atomic<int> commits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      ShardedSession session(static_cast<uint32_t>(t + 1), &transport_, &time_source_,
                             cluster_.get(), static_cast<uint64_t>(t) * 13 + 5);
      Rng rng(static_cast<uint64_t>(t) + 99);
      for (int i = 0; i < 25; i++) {
        int64_t amount = static_cast<int64_t>(rng.NextInRange(1, 9));
        bool forward = rng.NextBool(0.5);
        const std::string& from = forward ? a : b;
        const std::string& to = forward ? b : a;
        TxnPlan plan;
        plan.ops.push_back(Op::RmwFn(from, [amount](const std::string& v) {
          return std::to_string(std::stoll(v) - amount);
        }));
        plan.ops.push_back(Op::RmwFn(to, [amount](const std::string& v) {
          return std::to_string(std::stoll(v) + amount);
        }));
        if (Run(session, plan) == TxnResult::kCommit) {
          commits.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  transport_.DrainForTesting();
  EXPECT_GT(commits.load(), 0);
  // The cross-shard invariant: totals conserved on every replica pair.
  for (ReplicaId r = 0; r < 3; r++) {
    int64_t total = std::stoll(cluster_->ReadAt(cluster_->ShardForKey(a), r, a).value) +
                    std::stoll(cluster_->ReadAt(cluster_->ShardForKey(b), r, b).value);
    EXPECT_EQ(total, 2000) << "replica " << r;
  }
}

}  // namespace
}  // namespace meerkat
