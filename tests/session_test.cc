// Session-level behaviour tests: execute-phase mechanics (read-your-writes,
// read caching, transforms), retry/timeout behaviour under faults, and stats
// accounting — all under the deterministic simulator.

#include <gtest/gtest.h>

#include <optional>

#include "src/protocol/replica.h"
#include "src/protocol/session.h"
#include "src/sim/sim_time_source.h"
#include "src/transport/sim_transport.h"
#include "tests/test_util.h"

namespace meerkat {
namespace {

class SessionFixture : public ::testing::Test {
 protected:
  SessionFixture() : sim_(CostModel{}), transport_(&sim_), time_source_(&sim_) {
    for (ReplicaId r = 0; r < 3; r++) {
      replicas_.push_back(std::make_unique<MeerkatReplica>(r, QuorumConfig::ForReplicas(3), 2,
                                                           &transport_));
    }
  }

  std::unique_ptr<MeerkatSession> MakeSession(uint64_t retry_ns = 0) {
    SessionOptions options;
    options.quorum = QuorumConfig::ForReplicas(3);
    options.cores_per_replica = 2;
    options.retry = RetryPolicy::WithTimeout(retry_ns);
    return std::make_unique<MeerkatSession>(1, &transport_, &time_source_, options, 11);
  }

  TxnResult RunTxn(MeerkatSession& session, TxnPlan plan, uint64_t horizon = 0) {
    std::optional<TxnResult> result;
    SimActor* actor = transport_.ActorFor(Address::Client(1), 0);
    sim_.Schedule(sim_.now() + 1, actor, [&](SimContext&) {
      session.ExecuteAsync(std::move(plan),
                           [&result](const TxnOutcome& o) { result = o.result; });
    });
    if (horizon == 0) {
      sim_.Run();
    } else {
      sim_.Run(sim_.now() + horizon);
    }
    return result.value_or(TxnResult::kFailed);
  }

  void Load(const std::string& key, const std::string& value) {
    for (auto& replica : replicas_) {
      replica->LoadKey(key, value, Timestamp{1, 0});
    }
  }

  Simulator sim_;
  SimTransport transport_;
  SimTimeSource time_source_;
  std::vector<std::unique_ptr<MeerkatReplica>> replicas_;
};

TEST_F(SessionFixture, ReadSetRecordsVersions) {
  Load("a", "1");
  auto session = MakeSession();
  TxnPlan plan;
  plan.ops.push_back(Op::Get("a"));
  plan.ops.push_back(Op::Get("ghost"));
  ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  const auto& reads = session->last_read_set();
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].key, "a");
  EXPECT_EQ(reads[0].read_wts, (Timestamp{1, 0}));
  EXPECT_EQ(reads[1].key, "ghost");
  EXPECT_FALSE(reads[1].read_wts.Valid());
  EXPECT_EQ(session->last_read_value("a").value_or(""), "1");
  EXPECT_EQ(session->last_read_value("ghost").value_or("x"), "");
  EXPECT_FALSE(session->last_read_value("never-touched").has_value());
}

TEST_F(SessionFixture, RepeatReadsServedFromCacheOnce) {
  Load("a", "1");
  auto session = MakeSession();
  TxnPlan plan;
  plan.ops.push_back(Op::Get("a"));
  plan.ops.push_back(Op::Get("a"));
  plan.ops.push_back(Op::Get("a"));
  ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  // One network read, one read-set entry; stats count all three app-level reads.
  EXPECT_EQ(session->last_read_set().size(), 1u);
  EXPECT_EQ(session->stats().reads, 3u);
}

TEST_F(SessionFixture, ReadYourWritesSkipsNetworkAndReadSet) {
  auto session = MakeSession();
  TxnPlan plan;
  plan.ops.push_back(Op::Put("w", "mine"));
  plan.ops.push_back(Op::Get("w"));
  ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  EXPECT_TRUE(session->last_read_set().empty());
}

TEST_F(SessionFixture, TransformComposesWithinTxn) {
  Load("n", "5");
  auto session = MakeSession();
  auto add3 = [](const std::string& v) { return std::to_string(std::stoi(v) + 3); };
  TxnPlan plan;
  plan.ops.push_back(Op::RmwFn("n", add3));  // 5 -> 8 (network read).
  plan.ops.push_back(Op::RmwFn("n", add3));  // 8 -> 11 (buffered value).
  ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  auto writes = session->last_write_set();
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].value, "11");
}

TEST_F(SessionFixture, LastWinsForRepeatedPuts) {
  auto session = MakeSession();
  TxnPlan plan;
  plan.ops.push_back(Op::Put("k", "first"));
  plan.ops.push_back(Op::Put("k", "second"));
  ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  auto writes = session->last_write_set();
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0].value, "second");
}

TEST_F(SessionFixture, EmptyTxnCommits) {
  auto session = MakeSession();
  EXPECT_EQ(RunTxn(*session, TxnPlan{}), TxnResult::kCommit);
}

TEST_F(SessionFixture, GetRetriesEscapeCrashedReplica) {
  Load("k", "v");
  // Crash one replica; with retries the session re-sends its GET, randomly
  // re-picking a replica until a live one answers.
  transport_.faults().CrashReplica(1);
  auto session = MakeSession(/*retry_ns=*/100'000);
  TxnPlan plan;
  plan.ops.push_back(Op::Get("k"));
  EXPECT_EQ(RunTxn(*session, plan, /*horizon=*/100'000'000), TxnResult::kCommit);
}

TEST_F(SessionFixture, FailsCleanlyWhenMajorityDown) {
  Load("k", "v");
  transport_.faults().CrashReplica(1);
  transport_.faults().CrashReplica(2);
  auto session = MakeSession(/*retry_ns=*/100'000);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "x"));
  // Reads can still be served by replica 0, but no commit quorum exists; the
  // coordinator exhausts its retries and reports failure rather than hanging.
  EXPECT_EQ(RunTxn(*session, plan, /*horizon=*/1'000'000'000), TxnResult::kFailed);
  EXPECT_EQ(session->stats().failed, 1u);
}

TEST_F(SessionFixture, DuplicateRepliesDoNotDoubleCount) {
  Load("k", "v");
  transport_.faults().SetDuplicateProbability(1.0);  // Every message doubled.
  auto session = MakeSession();
  for (int i = 0; i < 5; i++) {
    TxnPlan plan;
    plan.ops.push_back(Op::Rmw("k", std::to_string(i)));
    ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  }
  EXPECT_EQ(session->stats().committed, 5u);
  EXPECT_EQ(replicas_[0]->store().Read("k").value, "4");
}

TEST_F(SessionFixture, StatsLatencyCountsEveryAttempt) {
  Load("k", "v");
  auto session = MakeSession();
  for (int i = 0; i < 3; i++) {
    TxnPlan plan;
    plan.ops.push_back(Op::Get("k"));
    ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);
  }
  EXPECT_EQ(session->stats().commit_latency.Count(), 3u);
  EXPECT_GT(session->stats().commit_latency.MeanNanos(), 0.0);
}

}  // namespace
}  // namespace meerkat
