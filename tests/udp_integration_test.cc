// End-to-end integration over the loopback-UDP transport: every protocol
// message crosses a real socket, gets serialized/deserialized, and is
// kernel-steered to its destination core's poller thread. All four system
// kinds must stay serializable, survive genuine + injected datagram loss,
// and (via tests/zcp_conformance.h) produce zero DAP violations while doing
// so — the wire runtime preserves the same zero-coordination structure as
// the in-process runtimes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/api/blocking_client.h"
#include "src/common/metrics.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb_t.h"
#include "tests/serializability_checker.h"
#include "tests/test_util.h"
#include "tests/trace_dump_on_failure.h"
#include "tests/zcp_conformance.h"

namespace meerkat {
namespace {

// Runs a short concurrent YCSB-T workload over UDP and checks the committed
// history for serializability. Shared by the per-kind and lossy suites.
void RunWorkloadOverUdp(UdpHarness& h, int num_clients, int duration_ms,
                        const char* context) {
  YcsbTOptions y;
  y.num_keys = 64;
  y.key_size = 8;
  y.value_size = 8;
  YcsbTWorkload workload(y);

  SerializabilityChecker checker;
  workload.ForEachInitialKey([&](const std::string& key, const std::string& value) {
    h.system().Load(key, value);
    checker.RecordLoadedKey(key);
  });

  ThreadedRunOptions run;
  run.num_clients = num_clients;
  run.duration_ms = duration_ms;
  run.load_initial_keys = false;
  run.on_txn_done = [&checker](ClientSession& session, const TxnOutcome& outcome) {
    if (outcome.committed()) {
      checker.RecordCommit(session);
    }
  };
  RunResult result = RunThreadedWorkload(h.system(), workload, run);

  EXPECT_GT(result.stats.committed, 5u) << "no progress over UDP (" << context << ")";
  std::vector<std::string> violations = checker.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << context << ": " << v;
  }
}

// All four system kinds run the same workload over the wire.
class UdpAllKindsTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(UdpAllKindsTest, ServesSerializableTrafficOverLoopback) {
  SystemOptions options = DefaultOptions(GetParam(), /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  UdpHarness h(options);

  uint64_t sent_before = SnapshotMetrics().CounterValue("udp.sent_datagrams");
  RunWorkloadOverUdp(h, /*num_clients=*/3, /*duration_ms=*/250, ToString(GetParam()));

  // The traffic really took the wire path: datagrams were sent and received.
  // Stop the transport first (idempotent; the harness destructor repeats it):
  // histogram snapshots are only race-free at quiescent points (metrics.cc),
  // and the timer thread records wire histograms for as long as it runs.
  h.transport().Stop();
  MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_GT(snap.CounterValue("udp.sent_datagrams"), sent_before);
  EXPECT_EQ(snap.CounterValue("udp.missteered_drops"), 0u)
      << "kernel steering delivered a datagram to the wrong core's socket";
}

INSTANTIATE_TEST_SUITE_P(AllKinds, UdpAllKindsTest,
                         ::testing::Values(SystemKind::kMeerkat, SystemKind::kMeerkatPb,
                                           SystemKind::kTapir, SystemKind::kKuaFu),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           switch (info.param) {
                             case SystemKind::kMeerkat:
                               return std::string("Meerkat");
                             case SystemKind::kMeerkatPb:
                               return std::string("MeerkatPb");
                             case SystemKind::kTapir:
                               return std::string("Tapir");
                             case SystemKind::kKuaFu:
                               return std::string("KuaFu");
                           }
                           return std::string("Unknown");
                         });

// Injected drop/duplicate probability on top of genuine UDP loss: the
// protocol must mask both with retransmissions and stay serializable.
class UdpLossyNetworkTest : public ::testing::TestWithParam<double> {};

TEST_P(UdpLossyNetworkTest, MeerkatSurvivesDropsOverUdp) {
  double drop = GetParam();
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  UdpHarness h(options);
  h.transport().faults().SetDropProbability(drop);
  h.transport().faults().SetDuplicateProbability(drop);
  h.transport().faults().SetMaxExtraDelay(1'000'000);

  RunWorkloadOverUdp(h, /*num_clients=*/3, /*duration_ms=*/250,
                     ("drop=" + std::to_string(drop)).c_str());
}

INSTANTIATE_TEST_SUITE_P(DropRates, UdpLossyNetworkTest, ::testing::Values(0.01, 0.05, 0.15),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "drop" + std::to_string(static_cast<int>(info.param * 100));
                         });

// Delayed delivery rides the transport's timer heap rather than the direct
// sendmmsg path; the protocol must tolerate the induced reordering.
TEST(UdpDelayTest, ReorderingUnderBaseDelay) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  UdpTransport::Options udp;
  udp.base_delay_ns = 200'000;  // 0.2 ms each way.
  UdpHarness h(options, udp);
  h.transport().faults().SetMaxExtraDelay(500'000);

  RunWorkloadOverUdp(h, /*num_clients=*/2, /*duration_ms=*/200, "base_delay");
}

TEST(UdpFiveReplicaTest, FastAndSlowPathQuorumsOverUdp) {
  // n=5 (f=2) over the wire: fast path needs 4 matching votes; with two
  // replicas crashed the slow path (3 votes) must still commit.
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2, /*replicas=*/5);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  UdpHarness h(options);
  h.system().Load("k", "v0");

  BlockingClient client(h.system(), 1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "v1"));
  ASSERT_EQ(client.ExecuteWithRetry(plan).result, TxnResult::kCommit);
  EXPECT_GE(client.session().stats().fast_path_commits, 1u);

  h.transport().faults().CrashReplica(4);
  TxnPlan plan2;
  plan2.ops.push_back(Op::Rmw("k", "v2"));
  ASSERT_EQ(client.ExecuteWithRetry(plan2).result, TxnResult::kCommit);

  h.transport().faults().CrashReplica(3);
  TxnPlan plan3;
  plan3.ops.push_back(Op::Rmw("k", "v3"));
  ASSERT_EQ(client.ExecuteWithRetry(plan3).result, TxnResult::kCommit);
  EXPECT_GE(client.session().stats().slow_path_commits, 1u);
  h.transport().DrainForTesting();
  EXPECT_EQ(h.system().ReadAtReplica(0, "k").value, "v3");
}

// The distinct-port fallback must be a drop-in: same protocol behavior when
// every (replica, core) endpoint has its own port instead of a cBPF-steered
// reuseport group.
TEST(UdpFallbackModeTest, DistinctPortsServeSerializableTraffic) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  UdpTransport::Options udp;
  udp.force_distinct_ports = true;
  UdpHarness h(options, udp);
  EXPECT_FALSE(h.transport().reuseport_steering());

  RunWorkloadOverUdp(h, /*num_clients=*/3, /*duration_ms=*/200, "distinct_ports");
}

}  // namespace
}  // namespace meerkat
