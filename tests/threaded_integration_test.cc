// Threaded-runtime integration tests: real threads and locks under
// progressively nastier network conditions, larger quorums (f = 2), epoch
// change concurrent with live traffic, and trecord checkpointing.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/api/blocking_client.h"
#include "src/protocol/replica.h"
#include "src/protocol/session.h"
#include "src/workload/driver.h"
#include "src/workload/ycsb_t.h"
#include "tests/serializability_checker.h"
#include "tests/test_util.h"
#include "tests/trace_dump_on_failure.h"
#include "tests/zcp_conformance.h"

namespace meerkat {
namespace {

// Sweep message-drop probability: the protocol must mask loss with
// retransmissions and stay serializable.
class LossyNetworkTest : public ::testing::TestWithParam<double> {};

TEST_P(LossyNetworkTest, MeerkatSurvivesDrops) {
  double drop = GetParam();
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  ThreadedHarness h(options);
  h.transport().faults().SetDropProbability(drop);
  h.transport().faults().SetDuplicateProbability(drop);
  h.transport().faults().SetMaxExtraDelay(1'000'000);

  YcsbTOptions y;
  y.num_keys = 64;
  y.key_size = 8;
  y.value_size = 8;
  YcsbTWorkload workload(y);

  SerializabilityChecker checker;
  workload.ForEachInitialKey([&](const std::string& key, const std::string& value) {
    h.system().Load(key, value);
    checker.RecordLoadedKey(key);
  });

  ThreadedRunOptions run;
  run.num_clients = 3;
  run.duration_ms = 250;
  run.load_initial_keys = false;
  run.on_txn_done = [&checker](ClientSession& session, const TxnOutcome& outcome) {
    if (outcome.committed()) {
      checker.RecordCommit(session);
    }
  };
  RunResult result = RunThreadedWorkload(h.system(), workload, run);

  EXPECT_GT(result.stats.committed, 5u) << "no progress under drop=" << drop;
  std::vector<std::string> violations = checker.Check();
  for (const std::string& v : violations) {
    ADD_FAILURE() << v;
  }
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossyNetworkTest, ::testing::Values(0.01, 0.05, 0.15),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "drop" + std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(FiveReplicaTest, FastAndSlowPathQuorums) {
  // n=5 (f=2): the fast path needs 4 matching votes; with one replica down it
  // is still reachable; with two down the slow path (3 votes) still commits.
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2, /*replicas=*/5);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  ThreadedHarness h(options);
  h.system().Load("k", "v0");

  BlockingClient client(h.system(), 1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "v1"));
  ASSERT_EQ(client.ExecuteWithRetry(plan).result, TxnResult::kCommit);
  EXPECT_GE(client.session().stats().fast_path_commits, 1u);

  h.transport().faults().CrashReplica(4);
  TxnPlan plan2;
  plan2.ops.push_back(Op::Rmw("k", "v2"));
  ASSERT_EQ(client.ExecuteWithRetry(plan2).result, TxnResult::kCommit);

  h.transport().faults().CrashReplica(3);
  TxnPlan plan3;
  plan3.ops.push_back(Op::Rmw("k", "v3"));
  ASSERT_EQ(client.ExecuteWithRetry(plan3).result, TxnResult::kCommit);
  // With 3 of 5 alive the fast quorum (4) is unreachable: that commit must
  // have used the slow path.
  EXPECT_GE(client.session().stats().slow_path_commits, 1u);
  // The commit callback races the asynchronous write phase at the replicas;
  // drain before reading replica 0's store directly.
  h.transport().DrainForTesting();
  EXPECT_EQ(h.system().ReadAtReplica(0, "k").value, "v3");
}

TEST(EpochChangeUnderTrafficTest, TrafficResumesAfterChange) {
  // Direct replica construction for recovery hooks.
  ThreadedTransport transport;
  SystemTimeSource time_source;
  QuorumConfig quorum = QuorumConfig::ForReplicas(3);
  std::vector<std::unique_ptr<MeerkatReplica>> replicas;
  for (ReplicaId r = 0; r < 3; r++) {
    replicas.push_back(std::make_unique<MeerkatReplica>(r, quorum, 2, &transport));
    replicas.back()->LoadKey("hot", "0", Timestamp{1, 0});
  }

  SessionOptions session_options;
  session_options.quorum = quorum;
  session_options.cores_per_replica = 2;
  session_options.retry = RetryPolicy::WithTimeout(2'000'000);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> commits{0};
  std::thread worker([&] {
    MeerkatSession session(1, &transport, &time_source, session_options, 3);
    std::mutex mu;
    std::condition_variable cv;
    while (!stop.load(std::memory_order_acquire)) {
      bool done = false;
      TxnPlan plan;
      plan.ops.push_back(Op::Rmw("hot", "x"));
      // ExecuteAsync outside mu: the session locks itself, and the completion
      // callback takes mu while holding that lock (same order as
      // BlockingClient::Execute).
      session.ExecuteAsync(plan, [&](const TxnOutcome& o) {
        if (o.committed()) {
          commits.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> inner(mu);
        done = true;
        cv.notify_one();
      });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
    }
  });

  // Let traffic flow, run an epoch change mid-stream, let traffic continue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  uint64_t before = commits.load();
  EXPECT_GT(before, 0u);
  replicas[0]->InitiateEpochChange();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true, std::memory_order_release);
  worker.join();

  EXPECT_GT(commits.load(), before) << "no commits after the epoch change";
  for (auto& replica : replicas) {
    EXPECT_EQ(replica->epoch(), 1u);
    EXPECT_FALSE(replica->epoch_change_in_progress());
  }
  transport.Stop();
}

TEST(TrecordCheckpointTest, TrimFinalizedDropsOnlyOldFinalRecords) {
  TRecord trecord(2);
  auto add = [&trecord](uint64_t seq, TxnStatus status, uint64_t time) {
    TxnRecord& rec = trecord.Partition(seq % 2).GetOrCreate(TxnId{1, seq});
    rec.status = status;
    rec.ts = Timestamp{time, 1};
  };
  add(1, TxnStatus::kCommitted, 100);
  add(2, TxnStatus::kAborted, 200);
  add(3, TxnStatus::kCommitted, 900);      // Newer than the watermark.
  add(4, TxnStatus::kValidatedOk, 100);    // In-flight: never trimmed.
  add(5, TxnStatus::kAcceptCommit, 100);   // In-flight consensus state: kept.

  EXPECT_EQ(trecord.TrimFinalizedAll(Timestamp{500, 9}), 2u);
  EXPECT_EQ(trecord.TotalSize(), 3u);
  EXPECT_EQ(trecord.Partition(1).Find(TxnId{1, 1}), nullptr);
  EXPECT_EQ(trecord.Partition(0).Find(TxnId{1, 2}), nullptr);
  EXPECT_NE(trecord.Partition(1).Find(TxnId{1, 3}), nullptr);
  EXPECT_NE(trecord.Partition(0).Find(TxnId{1, 4}), nullptr);
  EXPECT_NE(trecord.Partition(1).Find(TxnId{1, 5}), nullptr);
}

TEST(TrecordCheckpointTest, TrimmedReplicaStillServesTraffic) {
  ThreadedTransport transport;
  SystemTimeSource time_source;
  QuorumConfig quorum = QuorumConfig::ForReplicas(3);
  std::vector<std::unique_ptr<MeerkatReplica>> replicas;
  for (ReplicaId r = 0; r < 3; r++) {
    replicas.push_back(std::make_unique<MeerkatReplica>(r, quorum, 2, &transport));
    replicas.back()->LoadKey("k", "0", Timestamp{1, 0});
  }

  SessionOptions session_options;
  session_options.quorum = quorum;
  session_options.cores_per_replica = 2;
  session_options.retry = RetryPolicy::WithTimeout(2'000'000);
  MeerkatSession session(1, &transport, &time_source, session_options, 3);
  std::mutex mu;
  std::condition_variable cv;
  // OCC: an abort is legal when a transaction validates before the previous
  // commit's write has applied on every replica core, so re-execute on abort
  // the way a real client does — this test is about checkpointing, not
  // abort-freedom.
  auto run_txn = [&](const std::string& value) {
    TxnResult result = TxnResult::kFailed;
    for (int attempt = 0; attempt < 50; attempt++) {
      bool done = false;
      TxnPlan plan;
      plan.ops.push_back(Op::Rmw("k", value));
      // ExecuteAsync outside mu: the session locks itself, and the
      // completion callback takes mu while holding that lock.
      session.ExecuteAsync(plan, [&](const TxnOutcome& o) {
        std::lock_guard<std::mutex> inner(mu);
        result = o.result;
        done = true;
        cv.notify_one();
      });
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
      if (result != TxnResult::kAbort) {
        break;
      }
    }
    return result;
  };

  for (int i = 0; i < 10; i++) {
    ASSERT_EQ(run_txn(std::to_string(i)), TxnResult::kCommit);
  }
  transport.DrainForTesting();

  // Checkpoint: every finalized record goes away; the store keeps the data.
  for (auto& replica : replicas) {
    EXPECT_GT(replica->trecord().TrimFinalizedAll(Timestamp{UINT64_MAX, UINT32_MAX}), 0u);
    EXPECT_EQ(replica->trecord().TotalSize(), 0u);
    EXPECT_EQ(replica->store().Read("k").value, "9");
  }

  // Trimmed replicas keep processing new transactions.
  EXPECT_EQ(run_txn("after-trim"), TxnResult::kCommit);
  transport.DrainForTesting();
  EXPECT_EQ(replicas[0]->store().Read("k").value, "after-trim");
  transport.Stop();
}

// Regression for the session accessor locking fix: a poller thread reading
// the inspection accessors while the endpoint worker runs transactions must
// be data-race-free (the TSan CI job catches this if the accessors ever stop
// locking). last_read_set() is excluded: its returned reference is only
// stable while no transaction is in flight.
TEST(AccessorThreadSafetyTest, PollingAccessorsWhileExecuting) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  ThreadedHarness h(options);
  h.system().Load("a", "0");
  h.system().Load("b", "0");

  BlockingClient client(h.system(), 1);
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      sink += client.session().last_commit_ts().time;
      sink += client.session().last_tid().seq;
      sink += client.session().last_write_set().size();
      std::optional<std::string> v = client.session().last_read_value("a");
      sink += v.has_value() ? v->size() : 0;
    }
    (void)sink;
  });
  for (int i = 0; i < 100; i++) {
    TxnPlan plan;
    plan.ops.push_back(Op::Rmw("a", "v" + std::to_string(i)));
    plan.ops.push_back(Op::Get("b"));
    client.ExecuteWithRetry(plan);
  }
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(client.session().last_tid().seq, 0u);
}

}  // namespace
}  // namespace meerkat
