// Structural protocol audits under the simulator: exact message budgets and
// the latency claims of paper §6.2 ("the protocol saves one round trip
// compared to most state-of-the-art systems").

#include <gtest/gtest.h>

#include "src/common/plan.h"
#include "tests/test_util.h"

namespace meerkat {
namespace {

CoordinationStats RunOneTxn(SimHarness& h, ClientSession& session, TxnPlan plan) {
  CoordinationStats before = h.sim().context().stats();
  EXPECT_EQ(h.RunTxn(session, std::move(plan)), TxnResult::kCommit);
  CoordinationStats after = h.sim().context().stats();
  CoordinationStats delta;
  delta.client_msgs = after.client_msgs - before.client_msgs;
  delta.replica_to_replica_msgs = after.replica_to_replica_msgs - before.replica_to_replica_msgs;
  return delta;
}

TEST(MessageBudgetTest, MeerkatFastPathUsesExactlyElevenMessages) {
  // 1 RMW transaction, n=3, fast path:
  //   1 GET + 1 GET-reply + 3 VALIDATE + 3 VALIDATE-reply + 3 async COMMIT
  //   = 11 messages, all client<->replica, zero replica<->replica.
  SimHarness h(DefaultOptions(SystemKind::kMeerkat));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "1"));
  CoordinationStats delta = RunOneTxn(h, *session, plan);
  EXPECT_EQ(delta.client_msgs, 11u);
  EXPECT_EQ(delta.replica_to_replica_msgs, 0u);
}

TEST(MessageBudgetTest, MeerkatSlowPathAddsOneRound) {
  // Forced slow path adds 3 ACCEPT + 3 ACCEPT-reply = 17 total.
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat);
  options.force_slow_path = true;
  SimHarness h(options);
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "1"));
  CoordinationStats delta = RunOneTxn(h, *session, plan);
  EXPECT_EQ(delta.client_msgs, 17u);
  EXPECT_EQ(delta.replica_to_replica_msgs, 0u);
}

TEST(MessageBudgetTest, PrimaryBackupPaysReplicaRound) {
  // Meerkat-PB: 1 GET + 1 reply + 1 commit-request + 1 commit-reply client
  // messages, plus 2 REPLICATE + 2 acks between replicas.
  SimHarness h(DefaultOptions(SystemKind::kMeerkatPb));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "1"));
  CoordinationStats delta = RunOneTxn(h, *session, plan);
  EXPECT_EQ(delta.client_msgs, 4u);
  EXPECT_EQ(delta.replica_to_replica_msgs, 4u);
}

TEST(MessageBudgetTest, ReadOnlyTxnStillValidatesButSendsNoAccepts) {
  SimHarness h(DefaultOptions(SystemKind::kMeerkat));
  h.system().Load("k", "0");
  auto session = h.MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Get("k"));
  CoordinationStats delta = RunOneTxn(h, *session, plan);
  EXPECT_EQ(delta.client_msgs, 11u);  // Same shape: GET + validate + commit.
}

TEST(LatencyClaimTest, MeerkatCommitsInFewerRoundTripsThanPrimaryBackup) {
  // Unloaded, identical network parameters: Meerkat's commit phase is one
  // round trip (validate), Meerkat-PB's is two sequential rounds
  // (client->primary, primary->backups->primary). The measured unloaded
  // transaction latency must reflect the missing round.
  auto unloaded_latency = [](SystemKind kind) {
    SimHarness h(DefaultOptions(kind));
    h.system().Load("k", "0");
    auto session = h.MakeSession(1);
    for (int i = 0; i < 20; i++) {
      TxnPlan plan;
      plan.ops.push_back(Op::Rmw("k", std::to_string(i)));
      EXPECT_EQ(h.RunTxn(*session, plan), TxnResult::kCommit);
    }
    return session->stats().commit_latency.MeanNanos();
  };
  double meerkat = unloaded_latency(SystemKind::kMeerkat);
  double pb = unloaded_latency(SystemKind::kMeerkatPb);
  // One extra one-way is 2us in the default cost model; a full extra round
  // trip is ~4us. Demand at least half a round trip of separation.
  EXPECT_LT(meerkat + 2000, pb) << "meerkat=" << meerkat << " pb=" << pb;
}

TEST(LatencyClaimTest, SlowPathCostsExactlyOneExtraRoundTrip) {
  auto latency = [](bool force_slow) {
    SystemOptions options = DefaultOptions(SystemKind::kMeerkat);
    options.force_slow_path = force_slow;
    SimHarness h(options);
    h.system().Load("k", "0");
    auto session = h.MakeSession(1);
    for (int i = 0; i < 20; i++) {
      TxnPlan plan;
      plan.ops.push_back(Op::Rmw("k", std::to_string(i)));
      EXPECT_EQ(h.RunTxn(*session, plan), TxnResult::kCommit);
    }
    return session->stats().commit_latency.MeanNanos();
  };
  double fast = latency(false);
  double slow = latency(true);
  double round_trip = 2.0 * 2000;  // One-way latency is 2us in the model.
  EXPECT_NEAR(slow - fast, round_trip, round_trip * 0.8)
      << "fast=" << fast << " slow=" << slow;
}

}  // namespace
}  // namespace meerkat
