// Shared gtest hook: when a test fails, dump the most recent protocol-trace
// events (src/common/trace.h) to stderr so a failed drill or integration run
// can be replayed step by step without re-running under a debugger. Rings are
// reset between tests so each dump covers only the failing test's traffic.
//
// With MEERKAT_TRACE=0 the hooks compile to no-ops.

#ifndef MEERKAT_TESTS_TRACE_DUMP_ON_FAILURE_H_
#define MEERKAT_TESTS_TRACE_DUMP_ON_FAILURE_H_

#include <gtest/gtest.h>

#include "src/common/trace.h"

namespace meerkat {

class TraceDumpOnFailureListener : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo&) override { ResetTraces(); }

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      fprintf(stderr, "[trace] %s.%s failed; last protocol steps:\n",
              info.test_suite_name(), info.name());
      DumpRecentTraces(stderr, 64);
    }
  }
};

namespace {
const bool kTraceDumpOnFailureRegistered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new TraceDumpOnFailureListener());
  return true;
}();
}  // namespace

}  // namespace meerkat

#endif  // MEERKAT_TESTS_TRACE_DUMP_ON_FAILURE_H_
