// Unit tests for src/common: types, rng, zipf, stats, clock, plan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/common/clock.h"
#include "src/common/plan.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/common/zipf.h"

namespace meerkat {
namespace {

TEST(TimestampTest, OrderingIsLexicographic) {
  Timestamp a{10, 1};
  Timestamp b{10, 2};
  Timestamp c{11, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_GT(c, a);
  EXPECT_LE(a, a);
  EXPECT_GE(a, a);
  EXPECT_EQ(a, (Timestamp{10, 1}));
  EXPECT_NE(a, b);
}

TEST(TimestampTest, InvalidIsSmallerThanEverything) {
  EXPECT_FALSE(kInvalidTimestamp.Valid());
  EXPECT_LT(kInvalidTimestamp, (Timestamp{1, 0}));
  EXPECT_TRUE((Timestamp{0, 1}).Valid());
  EXPECT_TRUE((Timestamp{1, 0}).Valid());
}

TEST(TxnIdTest, UniquenessAcrossClients) {
  TxnId a{1, 5};
  TxnId b{2, 5};
  TxnId c{1, 6};
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  TxnIdHash hash;
  EXPECT_NE(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
}

TEST(TxnStatusTest, FinalityAndNames) {
  EXPECT_TRUE(IsFinal(TxnStatus::kCommitted));
  EXPECT_TRUE(IsFinal(TxnStatus::kAborted));
  EXPECT_FALSE(IsFinal(TxnStatus::kNone));
  EXPECT_FALSE(IsFinal(TxnStatus::kValidatedOk));
  EXPECT_FALSE(IsFinal(TxnStatus::kValidatedAbort));
  EXPECT_FALSE(IsFinal(TxnStatus::kAcceptCommit));
  EXPECT_STREQ(ToString(TxnStatus::kValidatedOk), "VALIDATED-OK");
  EXPECT_STREQ(ToString(TxnResult::kCommit), "COMMIT");
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(43);
  EXPECT_NE(Rng(42).Next(), c.Next());
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  for (int i = 0; i < 1000; i++) {
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; i++) {
    counts[rng.NextBounded(kBuckets)]++;
  }
  for (uint64_t b = 0; b < kBuckets; b++) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1) << "bucket " << b;
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; i++) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(5);
  ZipfGenerator zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; i++) {
    uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 100u);
    counts[v]++;
  }
  EXPECT_NEAR(counts[0], 1000, 200);
  EXPECT_NEAR(counts[99], 1000, 200);
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  Rng rng(5);
  ZipfGenerator zipf(100000, 0.99);
  uint64_t top10 = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    if (zipf.Next(rng) < 10) {
      top10++;
    }
  }
  // At theta ~1 over 100k items, the top 10 ranks draw a large constant
  // fraction of all accesses.
  EXPECT_GT(top10, kSamples / 5u);
}

TEST(ZipfTest, RanksMatchTheoreticalRatios) {
  Rng rng(17);
  ZipfGenerator zipf(1000, 0.8);
  std::vector<int> counts(1000, 0);
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; i++) {
    counts[zipf.Next(rng)]++;
  }
  // P(rank 0) / P(rank 9) should be ~ (10/1)^0.8 = ~6.3.
  double ratio = static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, std::pow(10.0, 0.8), std::pow(10.0, 0.8) * 0.25);
}

TEST(ZipfTest, HandlesThetaNearOne) {
  Rng rng(5);
  ZipfGenerator zipf(1000, 1.0);  // Internally nudged off the pole.
  for (int i = 0; i < 10000; i++) {
    ASSERT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(KeyChooserTest, ScramblesButCoversKeyspace) {
  Rng rng(5);
  KeyChooser chooser(1000, 0.9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 50000; i++) {
    uint64_t k = chooser.Next(rng);
    ASSERT_LT(k, 1000u);
    seen.insert(k);
  }
  EXPECT_GT(seen.size(), 500u);  // Scrambled hot set still covers broadly.
}

TEST(LatencyHistogramTest, QuantilesAndMean) {
  LatencyHistogram hist;
  for (uint64_t v = 1; v <= 1000; v++) {
    hist.Record(v * 1000);  // 1us .. 1000us
  }
  EXPECT_EQ(hist.Count(), 1000u);
  EXPECT_NEAR(hist.MeanNanos(), 500500.0, 1000.0);
  EXPECT_NEAR(static_cast<double>(hist.QuantileNanos(0.5)), 500000.0, 500000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(hist.QuantileNanos(0.99)), 990000.0, 990000.0 * 0.05);
  EXPECT_EQ(hist.MinNanos(), 1000u);
  EXPECT_EQ(hist.MaxNanos(), 1000000u);
}

TEST(LatencyHistogramTest, MergeAndReset) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_EQ(a.MinNanos(), 100u);
  EXPECT_EQ(a.MaxNanos(), 300u);
  a.Reset();
  EXPECT_EQ(a.Count(), 0u);
  EXPECT_EQ(a.QuantileNanos(0.5), 0u);
}

TEST(LatencyHistogramTest, ZeroAndHugeValues) {
  LatencyHistogram hist;
  hist.Record(0);
  hist.Record(UINT64_MAX);
  EXPECT_EQ(hist.Count(), 2u);
  EXPECT_EQ(hist.MinNanos(), 0u);
  EXPECT_EQ(hist.MaxNanos(), UINT64_MAX);
}

TEST(LatencyHistogramTest, QuantilesClampToObservedRange) {
  // One sample: every quantile IS that sample, not its bucket's lower bound
  // (the log bucket starting below 1500 used to leak through as the p50).
  LatencyHistogram one;
  one.Record(1500);
  EXPECT_EQ(one.QuantileNanos(0.0), 1500u);
  EXPECT_EQ(one.QuantileNanos(0.5), 1500u);
  EXPECT_EQ(one.QuantileNanos(0.99), 1500u);
  EXPECT_EQ(one.QuantileNanos(1.0), 1500u);

  // Out-of-range q values clamp instead of misbehaving.
  EXPECT_EQ(one.QuantileNanos(-1.0), 1500u);
  EXPECT_EQ(one.QuantileNanos(2.0), 1500u);

  // Two distant samples: quantiles stay inside [min, max].
  LatencyHistogram two;
  two.Record(1000);
  two.Record(1'000'000);
  for (double q : {0.0, 0.25, 0.5, 0.75, 0.99, 1.0}) {
    uint64_t v = two.QuantileNanos(q);
    EXPECT_GE(v, 1000u) << "q=" << q;
    EXPECT_LE(v, 1'000'000u) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, HugeSamplesBucketWithoutOverflow) {
  // Samples at and above 2^60 ns used to overflow the sub-bucket scaling
  // (frac * 16 wraps uint64); they must land in increasing buckets and keep
  // quantiles within the observed range.
  LatencyHistogram hist;
  const uint64_t huge = 1ULL << 60;
  hist.Record(huge);
  hist.Record(huge + (huge >> 1));  // 1.5 * 2^60: different sub-bucket.
  hist.Record(UINT64_MAX);
  EXPECT_EQ(hist.Count(), 3u);
  for (double q : {0.0, 0.5, 1.0}) {
    uint64_t v = hist.QuantileNanos(q);
    EXPECT_GE(v, huge) << "q=" << q;
    EXPECT_LE(v, UINT64_MAX) << "q=" << q;
  }
  // Monotone across q.
  EXPECT_LE(hist.QuantileNanos(0.0), hist.QuantileNanos(0.5));
  EXPECT_LE(hist.QuantileNanos(0.5), hist.QuantileNanos(1.0));
}

TEST(LatencyHistogramTest, MergeIntoEmptyAdoptsMinAndMax) {
  LatencyHistogram src;
  src.Record(500);
  src.Record(9000);
  LatencyHistogram dst;
  dst.Merge(src);  // dst empty: must adopt src's min/max, not keep zeros.
  EXPECT_EQ(dst.Count(), 2u);
  EXPECT_EQ(dst.MinNanos(), 500u);
  EXPECT_EQ(dst.MaxNanos(), 9000u);
  EXPECT_GE(dst.QuantileNanos(0.5), 500u);

  // Merging an empty histogram changes nothing.
  LatencyHistogram empty;
  dst.Merge(empty);
  EXPECT_EQ(dst.Count(), 2u);
  EXPECT_EQ(dst.MinNanos(), 500u);
}

TEST(RunStatsTest, SummaryReportsFailedCount) {
  RunStats stats;
  stats.committed = 10;
  stats.aborted = 2;
  stats.failed = 3;
  std::string summary = stats.Summary(1.0);
  EXPECT_NE(summary.find("failed=3"), std::string::npos) << summary;
  EXPECT_NE(summary.find("committed=10"), std::string::npos);
  EXPECT_NE(summary.find("aborted=2"), std::string::npos);
}

TEST(RunStatsTest, RatesAndMerge) {
  RunStats a;
  a.committed = 90;
  a.aborted = 10;
  EXPECT_DOUBLE_EQ(a.AbortRate(), 0.1);
  EXPECT_DOUBLE_EQ(a.GoodputPerSec(2.0), 45.0);
  RunStats b;
  b.committed = 10;
  b.failed = 5;
  a.Merge(b);
  EXPECT_EQ(a.committed, 100u);
  EXPECT_EQ(a.failed, 5u);
  EXPECT_EQ(a.Attempts(), 115u);
  RunStats empty;
  EXPECT_DOUBLE_EQ(empty.AbortRate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.GoodputPerSec(0.0), 0.0);
}

TEST(ClockTest, StrictlyMonotonicPerClient) {
  SystemTimeSource source;
  LooselySyncedClock clock(&source, 0, 0);
  uint64_t last = 0;
  for (int i = 0; i < 1000; i++) {
    uint64_t now = clock.Now();
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(ClockTest, SkewShiftsReadings) {
  class FixedSource : public TimeSource {
   public:
    uint64_t NowNanos() override { return 1'000'000; }
  };
  FixedSource source;
  LooselySyncedClock ahead(&source, 500, 0);
  LooselySyncedClock behind(&source, -500, 0);
  EXPECT_EQ(ahead.Now(), 1'000'500u);
  EXPECT_EQ(behind.Now(), 999'500u);
}

TEST(ClockTest, JitterStaysBoundedAndMonotonic) {
  class FixedSource : public TimeSource {
   public:
    uint64_t NowNanos() override { return t_ += 10000; }

   private:
    uint64_t t_ = 1'000'000;
  };
  FixedSource source;
  LooselySyncedClock clock(&source, 0, 2000, 7);
  uint64_t last = 0;
  for (int i = 0; i < 1000; i++) {
    uint64_t now = clock.Now();
    EXPECT_GT(now, last);
    last = now;
  }
}

TEST(PlanTest, CountsReadsAndWrites) {
  TxnPlan plan;
  plan.ops.push_back(Op::Get("a"));
  plan.ops.push_back(Op::Put("b", "1"));
  plan.ops.push_back(Op::Rmw("c", "2"));
  EXPECT_EQ(plan.NumReads(), 2u);   // Get + Rmw.
  EXPECT_EQ(plan.NumWrites(), 2u);  // Put + Rmw.
}

// Property sweep: Zipf stays in range and is deterministic for a grid of
// (n, theta) configurations.
class ZipfPropertyTest : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfPropertyTest, InRangeAndDeterministic) {
  auto [n, theta] = GetParam();
  Rng rng1(99);
  Rng rng2(99);
  ZipfGenerator zipf1(n, theta);
  ZipfGenerator zipf2(n, theta);
  for (int i = 0; i < 2000; i++) {
    uint64_t a = zipf1.Next(rng1);
    uint64_t b = zipf2.Next(rng2);
    ASSERT_LT(a, n);
    ASSERT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ZipfPropertyTest,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 10, 1000, 1000000),
                       ::testing::Values(0.0, 0.3, 0.6, 0.9, 0.99, 1.2)));

}  // namespace
}  // namespace meerkat
