// Failure-handling tests for the Meerkat protocol (paper §5.3), exercised
// under the deterministic simulator:
//
//  * Replica crash tolerance: the cluster keeps committing with f replicas
//    down (slow path forced when the fast quorum is unreachable).
//  * Epoch change: a restarted replica rejoins with no state and is rebuilt
//    from its peers; in-flight transactions are force-finalized by the merge;
//    the epoch fence prevents old-epoch commits.
//  * Coordinator recovery: a backup coordinator finishes an orphaned
//    transaction with a safe outcome; views arbitrate between coordinators.

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "src/protocol/coordinator.h"
#include "src/protocol/replica.h"
#include "src/protocol/session.h"
#include "src/sim/sim_time_source.h"
#include "src/sim/simulator.h"
#include "src/transport/sim_transport.h"

namespace meerkat {
namespace {

constexpr size_t kCores = 2;

// A bare Meerkat cluster with direct replica access (the System facade hides
// recovery hooks by design).
class MeerkatClusterFixture : public ::testing::Test {
 protected:
  MeerkatClusterFixture()
      : sim_(CostModel{}), transport_(&sim_), time_source_(&sim_),
        quorum_(QuorumConfig::ForReplicas(3)) {
    for (ReplicaId r = 0; r < 3; r++) {
      replicas_.push_back(std::make_unique<MeerkatReplica>(r, quorum_, kCores, &transport_));
    }
  }

  std::unique_ptr<MeerkatSession> MakeSession(uint32_t client_id) {
    SessionOptions options;
    options.quorum = quorum_;
    options.cores_per_replica = kCores;
    // Retries let clients ride out crashed replicas and epoch-change pauses.
    options.retry = RetryPolicy::WithTimeout(200'000);  // 200us of virtual time.
    return std::make_unique<MeerkatSession>(client_id, &transport_, &time_source_, options,
                                            client_id * 31 + 7);
  }

  TxnResult RunTxn(MeerkatSession& session, TxnPlan plan, uint64_t horizon_ns = 0) {
    std::optional<TxnResult> result;
    SimActor* actor = transport_.ActorFor(Address::Client(session.client_id()), 0);
    sim_.Schedule(sim_.now() + 1, actor, [&](SimContext&) {
      session.ExecuteAsync(std::move(plan),
                           [&result](const TxnOutcome& o) { result = o.result; });
    });
    if (horizon_ns == 0) {
      sim_.Run();
    } else {
      sim_.Run(sim_.now() + horizon_ns);
    }
    return result.value_or(TxnResult::kFailed);
  }

  void Load(const std::string& key, const std::string& value) {
    for (auto& replica : replicas_) {
      replica->LoadKey(key, value, Timestamp{1, 0});
    }
  }

  std::string ValueAt(ReplicaId r, const std::string& key) {
    ReadResult read = replicas_[r]->store().Read(key);
    return read.found ? read.value : std::string();
  }

  Simulator sim_;
  SimTransport transport_;
  SimTimeSource time_source_;
  QuorumConfig quorum_;
  std::vector<std::unique_ptr<MeerkatReplica>> replicas_;
};

TEST_F(MeerkatClusterFixture, CommitsWithOneReplicaCrashed) {
  Load("k", "v0");
  transport_.faults().CrashReplica(2);
  auto session = MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "v1"));
  // Fast path needs all 3; with one down the coordinator times out into the
  // slow path and commits with a majority.
  EXPECT_EQ(RunTxn(*session, plan, /*horizon_ns=*/50'000'000), TxnResult::kCommit);
  EXPECT_EQ(session->stats().slow_path_commits, 1u);
  EXPECT_EQ(ValueAt(0, "k"), "v1");
  EXPECT_EQ(ValueAt(1, "k"), "v1");
  EXPECT_EQ(ValueAt(2, "k"), "v0");  // Crashed replica missed it.
}

TEST_F(MeerkatClusterFixture, EpochChangeRebuildsRestartedReplica) {
  Load("k", "v0");
  auto session = MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "v1"));
  ASSERT_EQ(RunTxn(*session, plan), TxnResult::kCommit);

  // Replica 2 crashes, loses everything, and restarts.
  transport_.faults().CrashReplica(2);
  replicas_[2]->CrashAndRestart();
  EXPECT_EQ(ValueAt(2, "k"), "");

  // More commits happen while it is down.
  TxnPlan plan2;
  plan2.ops.push_back(Op::Rmw("k", "v2"));
  plan2.ops.push_back(Op::Put("j", "new"));
  ASSERT_EQ(RunTxn(*session, plan2, /*horizon_ns=*/50'000'000), TxnResult::kCommit);

  // It comes back and replica 0 runs the epoch change to readmit it.
  transport_.faults().RecoverReplica(2);
  replicas_[0]->InitiateEpochChange();
  sim_.Run();

  EXPECT_EQ(replicas_[2]->epoch(), 1u);
  EXPECT_FALSE(replicas_[2]->waiting_recovery());
  EXPECT_FALSE(replicas_[0]->epoch_change_in_progress());
  EXPECT_EQ(ValueAt(2, "k"), "v2");
  EXPECT_EQ(ValueAt(2, "j"), "new");

  // The rebuilt replica participates in new transactions again.
  TxnPlan plan3;
  plan3.ops.push_back(Op::Rmw("k", "v3"));
  EXPECT_EQ(RunTxn(*session, plan3, /*horizon_ns=*/50'000'000), TxnResult::kCommit);
  EXPECT_EQ(session->stats().fast_path_commits, 2u);  // Txn 1 and txn 3.
  EXPECT_EQ(ValueAt(2, "k"), "v3");
}

TEST_F(MeerkatClusterFixture, EpochChangeFinalizesInFlightValidatedTxn) {
  Load("k", "v0");
  // Orphan a transaction: validate everywhere, never commit (the coordinator
  // "fails" after collecting replies).
  struct Orphaner : TransportReceiver {
    void Receive(Message&&) override {}
  };
  Orphaner orphaner;
  transport_.RegisterClient(99, &orphaner);
  TxnId tid{99, 1};
  Timestamp ts{1000, 99};
  SimActor* actor = transport_.ActorFor(Address::Client(99), 0);
  sim_.Schedule(1, actor, [&](SimContext&) {
    for (ReplicaId r = 0; r < 3; r++) {
      Message msg;
      msg.src = Address::Client(99);
      msg.dst = Address::Replica(r);
      msg.core = 0;
      msg.payload = ValidateRequest{
          tid, ts, {{"k", Timestamp{1, 0}}}, {{"k", "orphan"}}};
      transport_.Send(std::move(msg));
    }
  });
  sim_.Run();
  ASSERT_EQ(replicas_[0]->trecord().Partition(0).Find(tid)->status, TxnStatus::kValidatedOk);

  // The orphan's pending writer registration currently blocks later readers
  // of "k" from validating (ts > MIN(writers)). Epoch change must decide it.
  replicas_[1]->InitiateEpochChange();
  sim_.Run();

  // VALIDATED-OK at a majority -> merge rule 3 commits it.
  for (ReplicaId r = 0; r < 3; r++) {
    TxnRecord* rec = replicas_[r]->trecord().Partition(0).Find(tid);
    ASSERT_NE(rec, nullptr) << "replica " << r;
    EXPECT_EQ(rec->status, TxnStatus::kCommitted) << "replica " << r;
    EXPECT_EQ(ValueAt(r, "k"), "orphan") << "replica " << r;
  }

  // And the key is usable again afterwards.
  auto session = MakeSession(1);
  TxnPlan plan;
  plan.ops.push_back(Op::Rmw("k", "after"));
  EXPECT_EQ(RunTxn(*session, plan, /*horizon_ns=*/50'000'000), TxnResult::kCommit);
}

TEST_F(MeerkatClusterFixture, StaleEpochChangeRequestIgnored) {
  replicas_[0]->InitiateEpochChange();
  sim_.Run();
  EXPECT_EQ(replicas_[0]->epoch(), 1u);
  EXPECT_EQ(replicas_[1]->epoch(), 1u);
  EXPECT_EQ(replicas_[2]->epoch(), 1u);
  // A second epoch change bumps to 2; replay of epoch-1 traffic must not
  // regress anything (Initiate computes epoch()+1 = 2).
  replicas_[1]->InitiateEpochChange();
  sim_.Run();
  EXPECT_EQ(replicas_[0]->epoch(), 2u);
  EXPECT_EQ(replicas_[2]->epoch(), 2u);
}

class CoordinatorRecoveryFixture : public MeerkatClusterFixture {
 protected:
  // Validates (and optionally slow-path-accepts) a transaction on all
  // replicas, then abandons it: the coordinator "crashes" before COMMIT.
  void OrphanTransaction(TxnId tid, Timestamp ts, bool with_accept) {
    transport_.RegisterClient(98, &sink_);
    SimActor* actor = transport_.ActorFor(Address::Client(98), 0);
    sim_.Schedule(sim_.now() + 1, actor, [this, tid, ts, with_accept](SimContext&) {
      for (ReplicaId r = 0; r < 3; r++) {
        Message msg;
        msg.src = Address::Client(98);
        msg.dst = Address::Replica(r);
        msg.core = 0;
        msg.payload = ValidateRequest{
            tid, ts, {{"k", Timestamp{1, 0}}}, {{"k", "orphan"}}};
        transport_.Send(std::move(msg));
      }
      if (with_accept) {
        for (ReplicaId r = 0; r < 3; r++) {
          Message msg;
          msg.src = Address::Client(98);
          msg.dst = Address::Replica(r);
          msg.core = 0;
          msg.payload = AcceptRequest{tid,
                                      /*view=*/0,
                                      /*commit=*/true,
                                      ts,
                                      {{"k", Timestamp{1, 0}}},
                                      {{"k", "orphan"}}};
          transport_.Send(std::move(msg));
        }
      }
    });
    sim_.Run();
  }

  struct Sink : TransportReceiver {
    void Receive(Message&&) override {}
  };
  Sink sink_;
};

TEST_F(CoordinatorRecoveryFixture, BackupCoordinatorCommitsOrphanedTxn) {
  Load("k", "v0");
  TxnId tid{98, 1};
  OrphanTransaction(tid, Timestamp{1000, 98}, /*with_accept=*/false);

  // A backup coordinator (hosted here on a test client endpoint) takes over
  // in view 1.
  struct Backup : TransportReceiver {
    std::unique_ptr<BackupCoordinator> coordinator;
    void Receive(Message&& msg) override {
      if (const auto* timer = std::get_if<TimerFire>(&msg.payload)) {
        coordinator->OnTimer(timer->timer_id);
        return;
      }
      coordinator->OnMessage(msg);
    }
  };
  Backup backup;
  transport_.RegisterClient(97, &backup);
  std::optional<TxnResult> outcome;
  backup.coordinator = std::make_unique<BackupCoordinator>(
      &transport_, Address::Client(97), quorum_, /*core=*/0, tid, /*view=*/1,
      RetryPolicy::WithTimeout(200'000), /*timer_base=*/0,
      [&outcome](const CommitOutcome& o) { outcome = o.result; });
  SimActor* actor = transport_.ActorFor(Address::Client(97), 0);
  sim_.Schedule(sim_.now() + 1, actor, [&](SimContext&) { backup.coordinator->Start(); });
  sim_.Run();

  // VALIDATED-OK at a majority: priority 3 says commit.
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, TxnResult::kCommit);
  for (ReplicaId r = 0; r < 3; r++) {
    EXPECT_EQ(ValueAt(r, "k"), "orphan") << "replica " << r;
    EXPECT_EQ(replicas_[r]->trecord().Partition(0).Find(tid)->status, TxnStatus::kCommitted);
  }
}

TEST_F(CoordinatorRecoveryFixture, BackupCoordinatorAdoptsAcceptedOutcome) {
  Load("k", "v0");
  TxnId tid{98, 1};
  OrphanTransaction(tid, Timestamp{1000, 98}, /*with_accept=*/true);
  ASSERT_EQ(replicas_[0]->trecord().Partition(0).Find(tid)->status, TxnStatus::kAcceptCommit);

  struct Backup : TransportReceiver {
    std::unique_ptr<BackupCoordinator> coordinator;
    void Receive(Message&& msg) override {
      if (const auto* timer = std::get_if<TimerFire>(&msg.payload)) {
        coordinator->OnTimer(timer->timer_id);
        return;
      }
      coordinator->OnMessage(msg);
    }
  };
  Backup backup;
  transport_.RegisterClient(97, &backup);
  std::optional<TxnResult> outcome;
  backup.coordinator = std::make_unique<BackupCoordinator>(
      &transport_, Address::Client(97), quorum_, /*core=*/0, tid, /*view=*/1,
      RetryPolicy::WithTimeout(200'000), /*timer_base=*/0,
      [&outcome](const CommitOutcome& o) { outcome = o.result; });
  SimActor* actor = transport_.ActorFor(Address::Client(97), 0);
  sim_.Schedule(sim_.now() + 1, actor, [&](SimContext&) { backup.coordinator->Start(); });
  sim_.Run();

  // Priority 2: the accepted ACCEPT-COMMIT proposal must be preserved.
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, TxnResult::kCommit);
  EXPECT_EQ(ValueAt(1, "k"), "orphan");
}

TEST_F(CoordinatorRecoveryFixture, HigherViewSupersedesOriginalCoordinator) {
  Load("k", "v0");
  TxnId tid{98, 1};
  // The replicas promise view 5 for this transaction.
  transport_.RegisterClient(96, &sink_);
  SimActor* actor = transport_.ActorFor(Address::Client(96), 0);
  sim_.Schedule(1, actor, [&](SimContext&) {
    for (ReplicaId r = 0; r < 3; r++) {
      Message msg;
      msg.src = Address::Client(96);
      msg.dst = Address::Replica(r);
      msg.core = 0;
      msg.payload = CoordChangeRequest{tid, 5};
      transport_.Send(std::move(msg));
    }
  });
  sim_.Run();

  // The original coordinator's view-0 ACCEPT must now be rejected.
  struct Probe : TransportReceiver {
    int ok = 0;
    int rejected = 0;
    void Receive(Message&& msg) override {
      if (const auto* reply = std::get_if<AcceptReply>(&msg.payload)) {
        (reply->ok ? ok : rejected)++;
      }
    }
  };
  Probe probe;
  transport_.RegisterClient(95, &probe);
  SimActor* probe_actor = transport_.ActorFor(Address::Client(95), 0);
  sim_.Schedule(sim_.now() + 1, probe_actor, [&](SimContext&) {
    for (ReplicaId r = 0; r < 3; r++) {
      Message msg;
      msg.src = Address::Client(95);
      msg.dst = Address::Replica(r);
      msg.core = 0;
      msg.payload = AcceptRequest{tid, /*view=*/0, /*commit=*/true, Timestamp{1000, 98}, {}, {}};
      transport_.Send(std::move(msg));
    }
  });
  sim_.Run();
  EXPECT_EQ(probe.ok, 0);
  EXPECT_EQ(probe.rejected, 3);
}

}  // namespace
}  // namespace meerkat
