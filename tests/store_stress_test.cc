// Real-thread stress tests on the storage layer: per-key locks and OCC
// registration under genuine concurrency. Complements the logic tests in
// store_test.cc by hammering the same entries from multiple hardware threads
// and checking structural invariants afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/rng.h"
#include "src/store/occ.h"
#include "src/store/vstore.h"
#include "src/workload/workload.h"

namespace meerkat {
namespace {

TEST(StoreStressTest, ConcurrentValidateCommitLeavesNoResidue) {
  VStore store;
  constexpr int kKeys = 8;
  for (int i = 0; i < kKeys; i++) {
    store.LoadKey(FormatKey(static_cast<uint64_t>(i), 8), "0", Timestamp{1, 0});
  }

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 3000;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 3);
      for (int i = 0; i < kTxnsPerThread; i++) {
        std::string key = FormatKey(rng.NextBounded(kKeys), 8);
        ReadResult read = store.Read(key);
        std::vector<ReadSetEntry> reads{{key, read.wts}};
        std::vector<WriteSetEntry> writes{{key, "v"}};
        // Monotonic per-thread timestamps, globally unique via client id.
        Timestamp ts{static_cast<uint64_t>(i) + 10, static_cast<uint32_t>(t + 1)};
        if (OccValidate(store, reads, writes, ts) == TxnStatus::kValidatedOk) {
          OccCommit(store, reads, writes, ts);
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_GT(committed.load(), 0u);
  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  // Invariant: after every transaction finalized, no pending registrations
  // remain and every entry's rts/wts is a timestamp some thread proposed.
  for (int i = 0; i < kKeys; i++) {
    KeyEntry* entry = store.Find(FormatKey(static_cast<uint64_t>(i), 8));
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->readers.empty()) << "leaked reader on key " << i;
    EXPECT_TRUE(entry->writers.empty()) << "leaked writer on key " << i;
    EXPECT_LE(entry->wts.time, static_cast<uint64_t>(kTxnsPerThread) + 10);
  }
}

TEST(StoreStressTest, ConcurrentInsertsKeepPointersStable) {
  VStore store(16);
  constexpr int kThreads = 4;
  std::vector<KeyEntry*> first_seen(kThreads * 1000, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Every thread creates its own range and repeatedly re-looks-up a
      // shared range; FindOrCreate must return stable pointers throughout.
      for (int i = 0; i < 1000; i++) {
        std::string own = "t" + std::to_string(t) + "-" + std::to_string(i);
        KeyEntry* e = store.FindOrCreate(own);
        first_seen[static_cast<size_t>(t) * 1000 + static_cast<size_t>(i)] = e;
        KeyEntry* shared = store.FindOrCreate("shared-" + std::to_string(i % 50));
        std::lock_guard<KeyLock> lock(shared->lock);
        shared->value = own;  // Any last writer wins; must not corrupt.
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < 1000; i++) {
      std::string own = "t" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(store.Find(own), first_seen[static_cast<size_t>(t) * 1000 + static_cast<size_t>(i)]);
    }
  }
  EXPECT_EQ(store.SizeForTesting(), static_cast<size_t>(kThreads) * 1000 + 50);
}

TEST(StoreStressTest, RmwCounterSerializesCorrectly) {
  // The canonical lost-update check at the storage layer: concurrent
  // increments through full OCC; the final value equals the commit count.
  VStore store;
  store.LoadKey("counter", "0", Timestamp{1, 0});
  constexpr int kThreads = 4;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; i++) {
        ReadResult read = store.Read("counter");
        int value = std::stoi(read.value);
        std::vector<ReadSetEntry> reads{{"counter", read.wts}};
        std::vector<WriteSetEntry> writes{{"counter", std::to_string(value + 1)}};
        Timestamp ts{static_cast<uint64_t>(i) + 10, static_cast<uint32_t>(t + 1)};
        if (OccValidate(store, reads, writes, ts) == TxnStatus::kValidatedOk) {
          // A validated increment still only installs if it is the newest
          // version (Thomas rule); stale-but-validated increments cannot
          // happen because validation pins the read version.
          OccCommit(store, reads, writes, ts);
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          OccCleanup(store, reads, writes, ts);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(static_cast<uint64_t>(std::stoi(store.Read("counter").value)), committed.load());
}

}  // namespace
}  // namespace meerkat
