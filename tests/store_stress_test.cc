// Real-thread stress tests on the storage layer: per-key locks and OCC
// registration under genuine concurrency. Complements the logic tests in
// store_test.cc by hammering the same entries from multiple hardware threads
// and checking structural invariants afterwards.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/rng.h"
#include "src/store/occ.h"
#include "src/store/vstore.h"
#include "src/workload/workload.h"

namespace meerkat {
namespace {

TEST(StoreStressTest, ConcurrentValidateCommitLeavesNoResidue) {
  VStore store;
  constexpr int kKeys = 8;
  for (int i = 0; i < kKeys; i++) {
    store.LoadKey(FormatKey(static_cast<uint64_t>(i), 8), "0", Timestamp{1, 0});
  }

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 3000;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 3);
      for (int i = 0; i < kTxnsPerThread; i++) {
        std::string key = FormatKey(rng.NextBounded(kKeys), 8);
        ReadResult read = store.Read(key);
        std::vector<ReadSetEntry> reads{{key, read.wts}};
        std::vector<WriteSetEntry> writes{{key, "v"}};
        // Monotonic per-thread timestamps, globally unique via client id.
        Timestamp ts{static_cast<uint64_t>(i) + 10, static_cast<uint32_t>(t + 1)};
        if (OccValidate(store, reads, writes, ts) == TxnStatus::kValidatedOk) {
          OccCommit(store, reads, writes, ts);
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          aborted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_GT(committed.load(), 0u);
  EXPECT_EQ(committed.load() + aborted.load(),
            static_cast<uint64_t>(kThreads) * kTxnsPerThread);
  // Invariant: after every transaction finalized, no pending registrations
  // remain and every entry's rts/wts is a timestamp some thread proposed.
  for (int i = 0; i < kKeys; i++) {
    KeyEntry* entry = store.Find(FormatKey(static_cast<uint64_t>(i), 8));
    ASSERT_NE(entry, nullptr);
    EXPECT_TRUE(entry->readers.empty()) << "leaked reader on key " << i;
    EXPECT_TRUE(entry->writers.empty()) << "leaked writer on key " << i;
    EXPECT_LE(entry->wts.time, static_cast<uint64_t>(kTxnsPerThread) + 10);
  }
}

TEST(StoreStressTest, ConcurrentInsertsKeepPointersStable) {
  VStore store(16);
  constexpr int kThreads = 4;
  std::vector<KeyEntry*> first_seen(kThreads * 1000, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Every thread creates its own range and repeatedly re-looks-up a
      // shared range; FindOrCreate must return stable pointers throughout.
      for (int i = 0; i < 1000; i++) {
        std::string own = "t" + std::to_string(t) + "-" + std::to_string(i);
        KeyEntry* e = store.FindOrCreate(own);
        first_seen[static_cast<size_t>(t) * 1000 + static_cast<size_t>(i)] = e;
        KeyEntry* shared = store.FindOrCreate("shared-" + std::to_string(i % 50));
        std::lock_guard<KeyLock> lock(shared->lock);
        shared->value = own;  // Any last writer wins; must not corrupt.
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < 1000; i++) {
      std::string own = "t" + std::to_string(t) + "-" + std::to_string(i);
      EXPECT_EQ(store.Find(own), first_seen[static_cast<size_t>(t) * 1000 + static_cast<size_t>(i)]);
    }
  }
  EXPECT_EQ(store.SizeForTesting(), static_cast<size_t>(kThreads) * 1000 + 50);
}

TEST(StoreStressTest, LockFreeReadsDuringInsertStorm) {
  // Readers hammer Find/Read/ReadVersion on a stable key set while writer
  // threads insert thousands of fresh keys into the same shards, forcing
  // repeated index resizes. Probes must never crash, tear, or miss a key that
  // was present before the readers started.
  VStore store(4);  // Few shards -> many resizes under contention.
  constexpr int kStableKeys = 64;
  for (int i = 0; i < kStableKeys; i++) {
    store.LoadKey(FormatKey(static_cast<uint64_t>(i), 8), "stable",
                  Timestamp{static_cast<uint64_t>(i) + 1, 1});
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads_done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; t++) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 31 + 7);
      while (!stop.load(std::memory_order_acquire)) {
        uint64_t i = rng.NextBounded(kStableKeys);
        std::string key = FormatKey(i, 8);
        ReadResult read = store.Read(key);
        ASSERT_TRUE(read.found) << "stable key vanished during inserts";
        ASSERT_EQ(read.value, "stable");
        ASSERT_EQ(read.wts, (Timestamp{i + 1, 1}));
        VersionProbe probe = store.ReadVersion(key);
        ASSERT_TRUE(probe.found);
        ASSERT_EQ(probe.wts, (Timestamp{i + 1, 1}));
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < 2; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 4000; i++) {
        KeyEntry* e = store.FindOrCreate("w" + std::to_string(t) + "-" + std::to_string(i));
        ASSERT_NE(e, nullptr);
      }
    });
  }
  threads[3].join();
  threads[4].join();
  stop.store(true, std::memory_order_release);
  for (int t = 0; t < 3; t++) {
    threads[static_cast<size_t>(t)].join();
  }
  EXPECT_GT(reads_done.load(), 0u);
  EXPECT_EQ(store.SizeForTesting(), static_cast<size_t>(kStableKeys) + 2 * 4000);
}

TEST(StoreStressTest, SeqlockReadsNeverObserveTornValues) {
  // Writers install values that deterministically encode the version they
  // belong to; readers assert the (value, wts) pair they get back is always
  // internally consistent. A torn seqlock read would pair a value with the
  // wrong version (or mix bytes of two values).
  VStore store;
  auto value_for = [](const Timestamp& ts) {
    // 40 bytes: rides the inline seqlock mirror (kInlineValueBytes = 48).
    std::string v = std::to_string(ts.time) + ":" + std::to_string(ts.client_id) + "|";
    v.resize(40, 'a' + static_cast<char>(ts.time % 26));
    return v;
  };
  store.LoadKey("hot", value_for(Timestamp{1, 1}), Timestamp{1, 1});

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> fast_checked{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; t++) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ReadResult read = store.Read("hot");
        ASSERT_TRUE(read.found);
        ASSERT_EQ(read.value, value_for(read.wts)) << "torn read: value/version mismatch";
        fast_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&, w] {
      KeyEntry* e = store.Find("hot");
      ASSERT_NE(e, nullptr);
      for (uint64_t i = 2; i < 20000; i++) {
        Timestamp ts{i, static_cast<uint32_t>(w + 1)};
        std::lock_guard<KeyLock> lock(e->lock);
        if (ts > e->wts) {
          e->InstallCommitted(value_for(ts), ts);
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_GT(fast_checked.load(), 0u);
  // Final state is the largest installed version, via both read paths.
  ReadResult final_read = store.Read("hot");
  EXPECT_EQ(final_read.wts, (Timestamp{19999, 2}));
  EXPECT_EQ(final_read.value, value_for(final_read.wts));
  EXPECT_EQ(store.ReadVersion("hot").wts, (Timestamp{19999, 2}));
}

TEST(StoreStressTest, OverflowValuesFallBackToLockedRead) {
  // Values larger than the inline mirror must still read consistently (the
  // reader takes the per-key lock instead).
  VStore store;
  auto big_value_for = [](uint64_t i) { return std::string(200, 'a' + static_cast<char>(i % 26)); };
  store.LoadKey("big", big_value_for(1), Timestamp{1, 1});
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    KeyEntry* e = store.Find("big");
    for (uint64_t i = 2; i < 5000; i++) {
      std::lock_guard<KeyLock> lock(e->lock);
      e->InstallCommitted(big_value_for(i), Timestamp{i, 1});
    }
    stop.store(true, std::memory_order_release);
  });
  while (!stop.load(std::memory_order_acquire)) {
    ReadResult read = store.Read("big");
    ASSERT_TRUE(read.found);
    ASSERT_EQ(read.value, big_value_for(read.wts.time));
    ASSERT_EQ(read.value.size(), 200u);
  }
  writer.join();
}

TEST(StoreStressTest, RmwCounterSerializesCorrectly) {
  // The canonical lost-update check at the storage layer: concurrent
  // increments through full OCC; the final value equals the commit count.
  VStore store;
  store.LoadKey("counter", "0", Timestamp{1, 0});
  constexpr int kThreads = 4;
  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; i++) {
        ReadResult read = store.Read("counter");
        int value = std::stoi(read.value);
        std::vector<ReadSetEntry> reads{{"counter", read.wts}};
        std::vector<WriteSetEntry> writes{{"counter", std::to_string(value + 1)}};
        Timestamp ts{static_cast<uint64_t>(i) + 10, static_cast<uint32_t>(t + 1)};
        if (OccValidate(store, reads, writes, ts) == TxnStatus::kValidatedOk) {
          // A validated increment still only installs if it is the newest
          // version (Thomas rule); stale-but-validated increments cannot
          // happen because validation pins the read version.
          OccCommit(store, reads, writes, ts);
          committed.fetch_add(1, std::memory_order_relaxed);
        } else {
          OccCleanup(store, reads, writes, ts);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(static_cast<uint64_t>(std::stoi(store.Read("counter").value)), committed.load());
}

}  // namespace
}  // namespace meerkat
