// Unit tests for the discrete-event simulator: event ordering, core
// occupancy, FCFS resources, and the dual-personality primitives.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/primitives.h"
#include "src/sim/sim_time_source.h"
#include "src/sim/simulator.h"

namespace meerkat {
namespace {

TEST(SimulatorTest, EventsRunInTimeOrder) {
  CostModel cost;
  Simulator sim(cost);
  SimActor a;
  SimActor b;
  std::vector<int> order;
  sim.Schedule(300, &a, [&](SimContext&) { order.push_back(3); });
  sim.Schedule(100, &b, [&](SimContext&) { order.push_back(1); });
  sim.Schedule(200, &a, [&](SimContext&) { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, TiesBreakInSchedulingOrder) {
  CostModel cost;
  Simulator sim(cost);
  SimActor a;
  std::vector<int> order;
  sim.Schedule(100, &a, [&](SimContext&) { order.push_back(1); });
  sim.Schedule(100, &a, [&](SimContext&) { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorTest, ChargeAdvancesActorClock) {
  CostModel cost;
  Simulator sim(cost);
  SimActor a;
  uint64_t end_time = 0;
  sim.Schedule(100, &a, [&](SimContext& ctx) {
    ctx.Charge(50);
    end_time = ctx.now();
  });
  sim.Run();
  EXPECT_EQ(end_time, 150u);
  EXPECT_EQ(a.busy_until(), 150u);
}

TEST(SimulatorTest, BusyCoreDefersLaterEvents) {
  CostModel cost;
  Simulator sim(cost);
  SimActor core;
  std::vector<uint64_t> starts;
  auto handler = [&](SimContext& ctx) {
    starts.push_back(ctx.now());
    ctx.Charge(1000);
  };
  sim.Schedule(100, &core, handler);
  sim.Schedule(150, &core, handler);  // Arrives while the core is busy.
  sim.Run();
  ASSERT_EQ(starts.size(), 2u);
  EXPECT_EQ(starts[0], 100u);
  EXPECT_EQ(starts[1], 1100u);  // Starts when the core frees, not at 150.
}

TEST(SimulatorTest, IndependentActorsRunConcurrently) {
  CostModel cost;
  Simulator sim(cost);
  SimActor a;
  SimActor b;
  std::vector<uint64_t> starts;
  auto handler = [&](SimContext& ctx) {
    starts.push_back(ctx.now());
    ctx.Charge(1000);
  };
  sim.Schedule(100, &a, handler);
  sim.Schedule(150, &b, handler);
  sim.Run();
  EXPECT_EQ(starts, (std::vector<uint64_t>{100, 150}));  // No interference.
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  CostModel cost;
  Simulator sim(cost);
  SimActor a;
  int ran = 0;
  sim.Schedule(100, &a, [&](SimContext&) { ran++; });
  sim.Schedule(10000, &a, [&](SimContext&) { ran++; });
  sim.Run(5000);
  EXPECT_EQ(ran, 1);
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  CostModel cost;
  Simulator sim(cost);
  SimActor a;
  int chain = 0;
  std::function<void(SimContext&)> step = [&](SimContext& ctx) {
    if (++chain < 5) {
      sim.Schedule(ctx.now() + 10, &a, step);
    }
  };
  sim.Schedule(0, &a, step);
  sim.Run();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(SimContextTest, AcquireModelsFcfsQueueing) {
  CostModel cost;
  SimContext ctx(&cost);
  SimResource res;
  ctx.set_now(100);
  ctx.Acquire(&res, 50);
  EXPECT_EQ(ctx.now(), 150u);
  EXPECT_EQ(res.free_at, 150u);
  EXPECT_EQ(res.contended, 0u);
  // Second acquisition while the resource is "busy" in virtual time.
  ctx.set_now(120);
  ctx.Acquire(&res, 50);
  EXPECT_EQ(ctx.now(), 200u);  // Waited 150-120, then held 50.
  EXPECT_EQ(res.contended, 1u);
  EXPECT_EQ(res.acquisitions, 2u);
}

TEST(PrimitivesTest, RealLocksOutsideSimulation) {
  // No SimContext active: these must behave as real synchronization.
  ASSERT_EQ(SimContext::Current(), nullptr);
  KeyLock key_lock;
  SharedMutex mutex(100);
  SharedCounter counter(100);

  uint64_t shared_value = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; i++) {
        key_lock.lock();
        shared_value++;
        key_lock.unlock();
        counter.FetchAdd();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(shared_value, 40000u);
  EXPECT_EQ(counter.Load(), 40000u);
}

TEST(PrimitivesTest, SimPersonalityChargesVirtualTime) {
  CostModel cost;
  cost.key_lock_op_ns = 60;
  SimContext ctx(&cost);
  SimContext::Activation act(&ctx);
  ctx.set_now(1000);

  KeyLock key_lock;
  key_lock.lock();
  key_lock.unlock();
  EXPECT_EQ(ctx.now(), 1060u);
  EXPECT_EQ(ctx.stats().key_lock_ops, 1u);

  SharedMutex mutex(300);
  mutex.lock();
  mutex.unlock();
  EXPECT_EQ(ctx.now(), 1360u);
  EXPECT_EQ(ctx.stats().shared_structure_ops, 1u);

  SharedCounter counter(120);
  EXPECT_EQ(counter.FetchAdd(), 0u);
  EXPECT_EQ(counter.FetchAdd(), 1u);
  EXPECT_EQ(counter.Load(), 2u);
  EXPECT_EQ(ctx.now(), 1360u + 240u);
  EXPECT_EQ(ctx.stats().shared_structure_ops, 3u);
}

TEST(PrimitivesTest, KeyLockChargesButNeverQueues) {
  // Per-key locks charge their cost without FCFS queueing (see the KeyLock
  // comment: queueing run-to-completion handlers on fine-grained locks
  // creates backwards-causality stalls; conflicts surface as OCC aborts).
  CostModel cost;
  cost.key_lock_op_ns = 60;
  SimContext ctx(&cost);
  SimContext::Activation act(&ctx);
  KeyLock lock;
  ctx.set_now(100);
  lock.lock();
  lock.unlock();
  EXPECT_EQ(ctx.now(), 160u);
  ctx.set_now(120);  // An "earlier" acquisition must not stall.
  lock.lock();
  lock.unlock();
  EXPECT_EQ(ctx.now(), 180u);
  EXPECT_EQ(ctx.stats().key_lock_ops, 2u);
  EXPECT_EQ(ctx.stats().key_lock_waits, 0u);
}

TEST(CostModelTest, StackPresets) {
  CostModel erpc = CostModel::ForStack(NetworkStack::kErpc);
  CostModel udp = CostModel::ForStack(NetworkStack::kLinuxUdp);
  EXPECT_GT(udp.msg_recv_cpu_ns, 5 * erpc.msg_recv_cpu_ns);
  EXPECT_GT(udp.one_way_latency_ns, erpc.one_way_latency_ns);
  // Shared-structure costs are stack-independent.
  EXPECT_EQ(udp.atomic_counter_ns, erpc.atomic_counter_ns);
}

TEST(SimTimeSourceTest, TracksVirtualClock) {
  CostModel cost;
  Simulator sim(cost);
  SimTimeSource source(&sim);
  EXPECT_EQ(source.NowNanos(), 0u);
  SimActor a;
  uint64_t observed = 0;
  sim.Schedule(500, &a, [&](SimContext& ctx) {
    ctx.Charge(10);
    observed = source.NowNanos();  // Must see the actor's advanced clock.
  });
  sim.Run();
  EXPECT_EQ(observed, 510u);
}

}  // namespace
}  // namespace meerkat
