// Schedule fuzzing: small-scope exploration of message-delivery orders.
//
// A scheduling transport buffers every in-flight message and delivers them
// one at a time in an order chosen by a seeded RNG — every seed is a
// different, fully deterministic interleaving, including pathological ones a
// timing-based network never produces (e.g. one replica processing a
// transaction's entire lifetime before another sees its VALIDATE).
//
// For each schedule the suite runs a small set of conflicting transactions to
// quiescence and checks the protocol's core invariants:
//   * agreement: no transaction is COMMITTED on one replica and ABORTED on
//     another;
//   * serializability: committed results are consistent with the timestamp
//     order (per-pair conflict exclusion);
//   * convergence: after all commit messages drain, replicas that finalized
//     a transaction agree on the key's value/version history.

#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "src/common/client_cache.h"
#include "src/common/gc.h"
#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/protocol/replica.h"
#include "src/protocol/session.h"

namespace meerkat {
namespace {

// Delivers buffered messages in RNG order. Single-threaded: Deliver pumps
// until quiescence.
class SchedulingTransport : public Transport {
 public:
  explicit SchedulingTransport(uint64_t seed) : rng_(seed) {}

  void RegisterReplica(ReplicaId replica, CoreId core, TransportReceiver* receiver) override {
    replica_receivers_[{replica, core}] = receiver;
  }
  void RegisterClient(uint32_t client_id, TransportReceiver* receiver) override {
    client_receivers_[client_id] = receiver;
  }
  void UnregisterClient(uint32_t client_id) override { client_receivers_.erase(client_id); }
  void SetTimer(const Address&, CoreId, uint64_t, uint64_t) override {
    // No timers: fuzz schedules are loss-free, so retries are unnecessary.
  }

  void Send(Message msg) override { pending_.push_back(std::move(msg)); }

  // Delivers pending messages in random order until none remain.
  void RunToQuiescence() {
    while (!pending_.empty()) {
      size_t pick = rng_.NextBounded(pending_.size());
      Message msg = std::move(pending_[pick]);
      pending_[pick] = std::move(pending_.back());
      pending_.pop_back();
      Dispatch(std::move(msg));
    }
  }

 private:
  void Dispatch(Message&& msg) {
    if (msg.dst.kind == Address::Kind::kReplica) {
      auto it = replica_receivers_.find({msg.dst.id, msg.core});
      if (it != replica_receivers_.end()) {
        it->second->Receive(std::move(msg));
      }
      return;
    }
    auto it = client_receivers_.find(msg.dst.id);
    if (it != client_receivers_.end()) {
      it->second->Receive(std::move(msg));
    }
  }

  Rng rng_;
  std::vector<Message> pending_;
  std::map<std::pair<ReplicaId, CoreId>, TransportReceiver*> replica_receivers_;
  std::map<uint32_t, TransportReceiver*> client_receivers_;
};

struct FuzzOutcome {
  // (client id, txn seq) -> outcome.
  std::map<std::pair<uint32_t, uint32_t>, TxnResult> results;
  std::vector<std::string> violations;
  size_t live_records = 0;  // Sum of trecord sizes across replicas at the end.
};

// Runs `txns_per_client` back-to-back single-RMW transactions per client on
// one hot key under one delivery schedule and checks invariants. Each
// client's next transaction is launched from the previous completion
// callback, so its watermark stamp advances mid-schedule.
FuzzOutcome RunSchedule(uint64_t seed, int num_clients, int txns_per_client = 1,
                        GcOptions gc = GcOptions(), CacheOptions cache = CacheOptions()) {
  SchedulingTransport transport(seed);
  SystemTimeSource time_source;
  QuorumConfig quorum = QuorumConfig::ForReplicas(3);

  std::vector<std::unique_ptr<MeerkatReplica>> replicas;
  for (ReplicaId r = 0; r < 3; r++) {
    replicas.push_back(std::make_unique<MeerkatReplica>(r, quorum, /*num_cores=*/1, &transport,
                                                        /*group_base=*/0, RetryPolicy(),
                                                        OverloadOptions(), gc, cache));
    replicas.back()->LoadKey("hot", "0", Timestamp{1, 0});
  }

  // Shared across all clients, as in a real System (cross-session reuse is
  // part of what the schedules must not be able to corrupt).
  ClientCache shared_cache(cache);

  SessionOptions options;
  options.quorum = quorum;
  options.cores_per_replica = 1;
  options.retry = RetryPolicy::WithTimeout(0);  // Loss-free schedules need no retries.
  options.cache = &shared_cache;

  std::vector<std::unique_ptr<MeerkatSession>> sessions;
  FuzzOutcome outcome;
  for (int c = 1; c <= num_clients; c++) {
    sessions.push_back(std::make_unique<MeerkatSession>(static_cast<uint32_t>(c), &transport,
                                                        &time_source, options,
                                                        seed * 31 + static_cast<uint64_t>(c)));
  }
  std::function<void(uint32_t, uint32_t)> launch = [&](uint32_t client, uint32_t t) {
    TxnPlan plan;
    plan.ops.push_back(
        Op::Rmw("hot", "from-" + std::to_string(client) + "-" + std::to_string(t)));
    sessions[client - 1]->ExecuteAsync(plan, [&, client, t](const TxnOutcome& o) {
      outcome.results[{client, t}] = o.result;
      if (t < static_cast<uint32_t>(txns_per_client)) {
        launch(client, t + 1);
      }
    });
  };
  for (int c = 1; c <= num_clients; c++) {
    launch(static_cast<uint32_t>(c), 1);
  }
  transport.RunToQuiescence();

  // Every transaction must have completed (no lost messages, no timers
  // needed).
  for (int c = 1; c <= num_clients; c++) {
    for (int t = 1; t <= txns_per_client; t++) {
      if (outcome.results.count({static_cast<uint32_t>(c), static_cast<uint32_t>(t)}) == 0) {
        outcome.violations.push_back("client " + std::to_string(c) + " txn " +
                                     std::to_string(t) + " never completed");
      }
    }
  }

  std::vector<TxnId> all_tids;
  for (int c = 1; c <= num_clients; c++) {
    for (int t = 1; t <= txns_per_client; t++) {
      all_tids.push_back({static_cast<uint32_t>(c), static_cast<uint32_t>(t)});
    }
  }

  // Agreement: per transaction, replicas that reached a final status agree.
  // A trimmed record is indistinguishable from "never saw it" here; the GC
  // only trims finalized records, so trimming cannot mask divergence that the
  // surviving replicas would reveal.
  for (const TxnId& tid : all_tids) {
    std::optional<TxnStatus> final_status;
    for (auto& replica : replicas) {
      TxnRecord* rec = replica->trecord().Partition(0).Find(tid);
      if (rec == nullptr || !IsFinal(rec->status)) {
        continue;
      }
      if (final_status.has_value() && *final_status != rec->status) {
        outcome.violations.push_back("divergent finalization for txn " + tid.ToString());
      }
      final_status = rec->status;
    }
    // The client-visible outcome matches any replica finalization.
    auto it = outcome.results.find({tid.client_id, static_cast<uint32_t>(tid.seq)});
    if (final_status.has_value() && it != outcome.results.end() &&
        it->second != TxnResult::kFailed) {
      bool committed = *final_status == TxnStatus::kCommitted;
      if (committed != (it->second == TxnResult::kCommit)) {
        outcome.violations.push_back("client/replica outcome mismatch for txn " +
                                     tid.ToString());
      }
    }
  }

  // Registration hygiene: after quiescence nothing is left pending.
  for (auto& replica : replicas) {
    KeyEntry* entry = replica->store().Find("hot");
    if (entry != nullptr && (!entry->readers.empty() || !entry->writers.empty())) {
      // Pending registrations may legitimately remain only for transactions
      // that are still undecided at this replica (it missed the commit).
      // With a loss-free schedule every broadcast drains, so leftovers for
      // *finalized* transactions are leaks.
      for (const Timestamp& ts : entry->writers) {
        for (const TxnId& tid : all_tids) {
          TxnRecord* rec = replica->trecord().Partition(0).Find(tid);
          if (rec != nullptr && rec->ts == ts && IsFinal(rec->status)) {
            outcome.violations.push_back("leaked writer registration at replica " +
                                         std::to_string(replica->id()));
          }
        }
      }
    }
  }

  // Serial-order check: committed writers must have strictly ordered
  // timestamps, and the final value on each replica must be the write of the
  // highest-timestamp committed transaction *it finalized*.
  Timestamp max_ts = kInvalidTimestamp;
  std::string expected_value = "0";
  for (const TxnId& tid : all_tids) {
    if (outcome.results[{tid.client_id, static_cast<uint32_t>(tid.seq)}] != TxnResult::kCommit) {
      continue;
    }
    for (auto& replica : replicas) {
      TxnRecord* rec = replica->trecord().Partition(0).Find(tid);
      if (rec != nullptr && rec->ts.Valid() && rec->ts > max_ts) {
        max_ts = rec->ts;
        expected_value = "from-" + std::to_string(tid.client_id) + "-" +
                         std::to_string(static_cast<uint32_t>(tid.seq));
      }
    }
  }
  for (auto& replica : replicas) {
    ReadResult read = replica->store().Read("hot");
    if (read.wts == max_ts && read.value != expected_value) {
      outcome.violations.push_back("replica " + std::to_string(replica->id()) +
                                   " installed wrong value for ts " + max_ts.ToString());
    }
    outcome.live_records += replica->trecord().Partition(0).Size();
  }
  return outcome;
}

TEST(ScheduleFuzzTest, TwoConflictingTxnsAllSchedules) {
  int commits_seen = 0;
  int aborts_seen = 0;
  for (uint64_t seed = 0; seed < 400; seed++) {
    FuzzOutcome outcome = RunSchedule(seed, 2);
    for (const std::string& v : outcome.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
    for (auto& [client, result] : outcome.results) {
      (void)client;
      if (result == TxnResult::kCommit) {
        commits_seen++;
      } else if (result == TxnResult::kAbort) {
        aborts_seen++;
      }
    }
  }
  // Across schedules, both outcomes must actually occur (the fuzz is not
  // degenerate). Note that under adversarial interleavings *both* of a
  // conflicting pair may abort (each registered first at a different
  // replica), so the commit count is well below 2 per run.
  EXPECT_GT(commits_seen, 200);
  EXPECT_GT(aborts_seen, 0);
}

TEST(ScheduleFuzzTest, FourWayContentionAllSchedules) {
  for (uint64_t seed = 0; seed < 150; seed++) {
    FuzzOutcome outcome = RunSchedule(seed + 1000, 4);
    for (const std::string& v : outcome.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
}

// Trim-interleaving variant: the watermark GC runs a trim step after every
// delivered message, and each client chains two transactions so its second
// VALIDATE/COMMIT carries a stamp above its first transaction — making the
// first's finalized record trimmable while other messages for it (and for
// its conflicting peers) are still buffered. Every invariant must hold with
// trims spliced between arbitrary delivery points, and across the seed sweep
// trimming must actually occur (otherwise the variant is vacuous).
TEST(ScheduleFuzzTest, ConflictingChainsWithTrimInterleaved) {
  GcOptions aggressive = GcOptions().WithIntervalDispatches(1).WithTrimBudget(64);
  const size_t untrimmed_total = 3u /*replicas*/ * 2u /*clients*/ * 2u /*txns*/;
  bool trimmed_somewhere = false;
  for (uint64_t seed = 0; seed < 150; seed++) {
    FuzzOutcome outcome = RunSchedule(seed + 2000, 2, /*txns_per_client=*/2, aggressive);
    for (const std::string& v : outcome.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
    if (outcome.live_records < untrimmed_total) {
      trimmed_somewhere = true;
    }
  }
  EXPECT_TRUE(trimmed_somewhere) << "no schedule ever trimmed a record — vacuous variant";
}

// Cache-enabled variant: every client serves its second transaction's read of
// "hot" from the shared cache (read-your-own-writes populates it on the first
// commit, and a never-expiring lease keeps it servable), so the cached wts is
// stale whenever a conflicting peer committed in between — under *every*
// delivery schedule the OCC validation must turn that staleness into an
// abort, never a committed stale read (the serial-order check would flag it).
TEST(ScheduleFuzzTest, ConflictingChainsWithCacheEnabled) {
  CacheOptions cache = CacheOptions().WithEnabled(true).WithLease(1'000'000'000'000ULL);
  uint64_t hits_before = SnapshotMetrics(false).CounterValue("cache.hit");
  for (uint64_t seed = 0; seed < 150; seed++) {
    FuzzOutcome outcome = RunSchedule(seed + 3000, 2, /*txns_per_client=*/2, GcOptions(), cache);
    for (const std::string& v : outcome.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << v;
    }
  }
  uint64_t hits_after = SnapshotMetrics(false).CounterValue("cache.hit");
  EXPECT_GT(hits_after, hits_before) << "no schedule ever served a cached read — vacuous variant";
}

}  // namespace
}  // namespace meerkat
