// Recovery drills (docs/FAILURES.md): scripted crashes at protocol-step
// granularity, followed by the kind-appropriate recovery path, with the
// durability obligation checked through the public System API.
//
//   * Replica crash mid-VALIDATE: the cluster keeps committing on the slow
//     path, then the crashed replica is readmitted (epoch change for Meerkat,
//     committed-state transfer for the baselines) and no client-visible
//     commit is lost.
//   * Client crash mid-commit: the orphaned transaction is cooperatively
//     terminated by a replica-hosted backup coordinator (paper §5.3.2) and
//     every replica converges on one final state.
//   * Determinism: the full drill — chaos, crash, recovery — replays
//     identically from the same fault-plan seed, for every system kind.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <sstream>
#include <string>

#include "src/transport/fault_injector.h"
#include "tests/test_util.h"
#include "tests/trace_dump_on_failure.h"

namespace meerkat {
namespace {

bool UsesQuorumCommit(SystemKind kind) {
  return kind == SystemKind::kMeerkat || kind == SystemKind::kTapir;
}

// The protocol step whose nth occurrence kills the victim, per kind.
MsgKind CrashStep(SystemKind kind) {
  return UsesQuorumCommit(kind) ? MsgKind::kValidateRequest : MsgKind::kReplicateRequest;
}

// Primary-backup kinds never crash the primary (replica 0); quorum kinds can
// lose any minority replica.
ReplicaId Victim(SystemKind kind) { return UsesQuorumCommit(kind) ? 2 : 1; }

// Routes scripted crash rules into the System's crash-restart hook. Safe
// under the simulator: Judge runs serially inside Send.
void WireCrashHook(SimHarness& h) {
  ASSERT_NE(h.transport().fault_injector(), nullptr);
  System* system = &h.system();
  h.transport().fault_injector()->SetCrashHook([system](const Address& addr) {
    if (addr.kind == Address::Kind::kReplica) {
      system->CrashAndRestartReplica(addr.id);
    }
  });
}

class ReplicaCrashDrillTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(ReplicaCrashDrillTest, CrashMidValidateThenRecoveryLosesNoCommit) {
  SystemKind kind = GetParam();
  ReplicaId victim = Victim(kind);

  // The 4th step-message addressed to the victim kills it: a few transactions
  // complete cleanly first, then one is mid-commit when the replica dies.
  FaultPlan plan;
  plan.WithSeed(17).CrashDstAtNth(CrashStep(kind), 4, /*dst_replica=*/static_cast<int>(victim));

  SystemOptions options =
      DefaultOptions(kind).WithRetry(RetryPolicy::WithTimeout(200'000)).WithFaultPlan(plan);
  SimHarness h(options);
  WireCrashHook(h);

  auto session = h.MakeSession(1, /*seed=*/5);
  std::map<std::string, std::string> observed;  // Client-visible commits.
  for (int i = 0; i < 12; i++) {
    std::string key = "drill-" + std::to_string(i);
    std::string value = "v" + std::to_string(i);
    TxnPlan txn;
    txn.ops.push_back(Op::Put(key, value));
    TxnOutcome outcome = h.RunTxnOutcome(*session, txn);
    // A minority crash never blocks commits: the retry policy falls back to
    // the slow path (quorum kinds) or the primary drops the dead backup from
    // its replication quorum (primary-backup kinds).
    ASSERT_TRUE(outcome.committed()) << ToString(kind) << " txn " << i << " "
                                     << ToString(outcome.result) << "/" << ToString(outcome.reason);
    observed[key] = value;
  }

  // The scripted crash fired and left the victim awaiting readmission.
  EXPECT_GE(h.transport().fault_injector()->rule_matches(0), 4u);
  EXPECT_TRUE(h.system().ReplicaRecovering(victim));

  // Restore the network path, then run the kind-appropriate recovery.
  h.transport().fault_injector()->RecoverReplica(victim);
  h.system().InitiateRecovery(/*leader=*/0);
  h.sim().Run();
  EXPECT_FALSE(h.system().ReplicaRecovering(victim)) << ToString(kind);

  // Durability obligation: every client-visible commit is present on every
  // replica, including the rebuilt one, and all replicas agree.
  for (const auto& [key, value] : observed) {
    for (ReplicaId r = 0; r < 3; r++) {
      ReadResult read = h.system().ReadAtReplica(r, key);
      ASSERT_TRUE(read.found) << ToString(kind) << " replica " << r << " lost " << key;
      EXPECT_EQ(read.value, value) << ToString(kind) << " replica " << r << " " << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, ReplicaCrashDrillTest,
                         ::testing::Values(SystemKind::kMeerkat, SystemKind::kMeerkatPb,
                                           SystemKind::kTapir, SystemKind::kKuaFu),
                         [](const ::testing::TestParamInfo<SystemKind>& info) {
                           std::string name = ToString(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// A client dies after its first VALIDATE lands (one replica holds a pending
// transaction, the rest never heard of it). The transaction must not stay
// stuck: a replica-hosted backup coordinator terminates it (paper §5.3.2).
TEST(ClientCrashDrillTest, OrphanedCommitIsCooperativelyTerminated) {
  FaultPlan plan;
  plan.WithSeed(23).CrashSrcAtNth(MsgKind::kValidateRequest, 2, /*src_client=*/1);

  SystemOptions options = DefaultOptions(SystemKind::kMeerkat)
                              .WithRetry(RetryPolicy::WithTimeout(200'000))
                              .WithFaultPlan(plan);
  SimHarness h(options);

  auto session = h.MakeSession(1, /*seed=*/3);
  TxnPlan txn;
  txn.ops.push_back(Op::Put("orphan-key", "never-reported"));
  TxnOutcome outcome = h.RunTxnOutcome(*session, txn);
  // The client died mid-commit: it never observed a commit (its replies and
  // retransmissions all die at the crashed endpoint).
  EXPECT_FALSE(outcome.committed());
  EXPECT_GE(h.transport().fault_injector()->rule_matches(0), 2u);

  // Cooperative termination: replica 0 (the one that received VALIDATE #1)
  // scans for stale pending transactions and finishes them.
  const Timestamp everything{std::numeric_limits<uint64_t>::max(), 0};
  size_t started = h.system().RecoverOrphanedTransactions(/*host=*/0, everything);
  EXPECT_EQ(started, 1u);
  h.sim().Run();

  // The orphan reached a final state: a second scan finds nothing pending.
  EXPECT_EQ(h.system().RecoverOrphanedTransactions(/*host=*/0, everything), 0u);
  h.sim().Run();

  // With a single validated vote (below f+1) the safe decision is abort, and
  // all replicas agree the write never happened.
  for (ReplicaId r = 0; r < 3; r++) {
    EXPECT_FALSE(h.system().ReadAtReplica(r, "orphan-key").found) << "replica " << r;
  }
}

// The full drill — background chaos, a scripted mid-commit crash, recovery —
// replays bit-identically from its fault-plan seed, for every kind. This is
// what makes the drills usable as regression tests.
class DrillDeterminismTest
    : public ::testing::TestWithParam<std::tuple<SystemKind, uint64_t>> {};

std::string RunDrill(SystemKind kind, uint64_t seed) {
  ReplicaId victim = Victim(kind);
  FaultPlan plan;
  plan.WithSeed(seed).DropEvery(0.02).DuplicateEvery(0.01).DelayUpTo(1'500).CrashDstAtNth(
      CrashStep(kind), 3, /*dst_replica=*/static_cast<int>(victim));

  SystemOptions options =
      DefaultOptions(kind).WithRetry(RetryPolicy::WithTimeout(200'000)).WithFaultPlan(plan);
  SimHarness h(options);
  WireCrashHook(h);

  std::ostringstream sig;
  auto session = h.MakeSession(1, /*seed=*/seed * 13 + 1);
  for (int i = 0; i < 8; i++) {
    TxnPlan txn;
    txn.ops.push_back(Op::Put("key-" + std::to_string(i), "v" + std::to_string(i)));
    TxnOutcome outcome = h.RunTxnOutcome(*session, txn);
    sig << i << ":" << ToString(outcome.result) << "/" << ToString(outcome.path) << "/r"
        << outcome.retransmits << ";";
  }
  sig << "recovering=" << h.system().ReplicaRecovering(victim) << ";";

  h.transport().fault_injector()->RecoverReplica(victim);
  h.system().InitiateRecovery(/*leader=*/0);
  h.sim().Run();
  sig << "post=" << h.system().ReplicaRecovering(victim) << ";";

  // Fold the complete post-recovery state of every replica into the
  // signature: identical seeds must yield identical clusters.
  for (ReplicaId r = 0; r < 3; r++) {
    for (int i = 0; i < 8; i++) {
      ReadResult read = h.system().ReadAtReplica(r, "key-" + std::to_string(i));
      sig << r << "/" << i << "=" << (read.found ? read.value : "<none>") << ";";
    }
  }
  return sig.str();
}

TEST_P(DrillDeterminismTest, SameSeedSameDrill) {
  auto [kind, seed] = GetParam();
  std::string first = RunDrill(kind, seed);
  std::string second = RunDrill(kind, seed);
  EXPECT_EQ(first, second) << ToString(kind) << " seed " << seed;
  // The drill recovered: the victim rejoined and holds the workload's keys.
  EXPECT_NE(first.find("post=0"), std::string::npos) << first;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DrillDeterminismTest,
    ::testing::Combine(::testing::Values(SystemKind::kMeerkat, SystemKind::kMeerkatPb,
                                         SystemKind::kTapir, SystemKind::kKuaFu),
                       ::testing::Range<uint64_t>(1, 21)),
    [](const ::testing::TestParamInfo<std::tuple<SystemKind, uint64_t>>& info) {
      std::string name = ToString(std::get<0>(info.param));
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace meerkat
