// Recovery durability: the property §5.4 proves — every client-visible
// commit survives epoch changes, replica crashes, and lossy write-phase
// delivery. Randomized end-to-end runs under the simulator.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/protocol/replica.h"
#include "src/protocol/session.h"
#include "src/sim/sim_time_source.h"
#include "src/transport/sim_transport.h"

namespace meerkat {
namespace {

class DurabilityFixture : public ::testing::TestWithParam<uint64_t> {
 protected:
  DurabilityFixture() : sim_(CostModel{}), transport_(&sim_), time_source_(&sim_) {
    for (ReplicaId r = 0; r < 3; r++) {
      replicas_.push_back(std::make_unique<MeerkatReplica>(r, QuorumConfig::ForReplicas(3), 2,
                                                           &transport_));
      replicas_.back()->LoadKey("seed-key", "0", Timestamp{1, 0});
    }
  }

  Simulator sim_;
  SimTransport transport_;
  SimTimeSource time_source_;
  std::vector<std::unique_ptr<MeerkatReplica>> replicas_;
};

TEST_P(DurabilityFixture, ClientVisibleCommitsSurviveCrashAndEpochChange) {
  uint64_t seed = GetParam();
  transport_.faults().SetMaxExtraDelay(4000);  // Reorder aggressively.

  SessionOptions options;
  options.quorum = QuorumConfig::ForReplicas(3);
  options.cores_per_replica = 2;
  options.retry = RetryPolicy::WithTimeout(300'000);

  // A handful of clients run transactions; we record exactly which commits
  // each client OBSERVED (the durability obligation).
  constexpr int kClients = 4;
  constexpr int kTxnsPerClient = 15;
  std::vector<std::unique_ptr<MeerkatSession>> sessions;
  struct Commit {
    std::string key;
    std::string value;
    Timestamp ts;
  };
  std::map<TxnId, Commit> observed;

  struct Loop {
    MeerkatSession* session;
    Rng rng{0};
    int remaining = kTxnsPerClient;
    std::map<TxnId, Commit>* observed;
    void Next() {
      if (remaining-- <= 0) {
        return;
      }
      std::string key = "key-" + std::to_string(rng.NextBounded(6));
      std::string value = "v" + std::to_string(rng.Next() % 100000);
      TxnPlan plan;
      plan.ops.push_back(Op::Put(key, value));
      session->ExecuteAsync(plan, [this, key, value](const TxnOutcome& outcome) {
        if (outcome.committed()) {
          (*observed)[outcome.tid] = {key, value, outcome.commit_ts};
        }
        Next();
      });
    }
  };
  std::vector<std::unique_ptr<Loop>> loops;
  for (uint32_t c = 1; c <= kClients; c++) {
    sessions.push_back(
        std::make_unique<MeerkatSession>(c, &transport_, &time_source_, options, seed * 97 + c));
    auto loop = std::make_unique<Loop>();
    loop->session = sessions.back().get();
    loop->rng.Seed(seed * 31 + c);
    loop->observed = &observed;
    Loop* raw = loop.get();
    sim_.Schedule(c * 40 + 1, transport_.ActorFor(Address::Client(c), 0),
                  [raw](SimContext&) { raw->Next(); });
    loops.push_back(std::move(loop));
  }
  sim_.Run();
  ASSERT_GT(observed.size(), 10u);

  // Disaster: replica (seed % 3) loses everything and the cluster runs an
  // epoch change to readmit it.
  ReplicaId victim = static_cast<ReplicaId>(seed % 3);
  replicas_[victim]->CrashAndRestart();
  replicas_[(victim + 1) % 3]->InitiateEpochChange();
  sim_.Run();

  // Obligation: every observed commit's *effects* survive on every replica
  // (including the rebuilt one) — the key holds this transaction's version
  // or a newer committed one (wts is monotone per key). The trecord entry
  // itself may legitimately be gone: the watermark GC (DESIGN.md §12) trims
  // finalized records below the watermark before and after the crash. A
  // record that IS still present must read COMMITTED — a commit the client
  // observed can never flip.
  for (const auto& [tid, commit] : observed) {
    for (auto& replica : replicas_) {
      for (CoreId core = 0; core < 2; core++) {
        TxnRecord* rec = replica->trecord().Partition(core).Find(tid);
        if (rec != nullptr) {
          EXPECT_EQ(rec->status, TxnStatus::kCommitted)
              << "seed " << seed << " replica " << replica->id() << " lost commit "
              << tid.ToString();
        }
      }
      ReadResult read = replica->store().Read(commit.key);
      ASSERT_TRUE(read.found) << "seed " << seed << " replica " << replica->id()
                              << " lost key " << commit.key;
      EXPECT_GE(read.wts, commit.ts)
          << "seed " << seed << " replica " << replica->id() << " rolled back "
          << commit.key << " below committed " << tid.ToString();
    }
  }

  // And all three replicas agree on every key's final version.
  for (int k = 0; k < 6; k++) {
    std::string key = "key-" + std::to_string(k);
    ReadResult first = replicas_[0]->store().Read(key);
    for (ReplicaId r = 1; r < 3; r++) {
      ReadResult other = replicas_[r]->store().Read(key);
      EXPECT_EQ(first.found, other.found) << key;
      if (first.found && other.found) {
        EXPECT_EQ(first.value, other.value) << "seed " << seed << " divergent " << key;
        EXPECT_EQ(first.wts, other.wts) << key;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurabilityFixture, ::testing::Range<uint64_t>(1, 9));

TEST(ClockSkewCorrectnessTest, HugeSkewNeverBreaksSerializability) {
  // Paper §3: clock synchronization affects performance, never correctness.
  // Give one client a clock 5 *seconds* in the past: its proposals lose
  // validation races constantly, but committed history stays serializable
  // and its commits still apply.
  Simulator sim(CostModel{});
  SimTransport transport(&sim);
  SimTimeSource time_source(&sim);
  std::vector<std::unique_ptr<MeerkatReplica>> replicas;
  for (ReplicaId r = 0; r < 3; r++) {
    replicas.push_back(std::make_unique<MeerkatReplica>(r, QuorumConfig::ForReplicas(3), 1,
                                                        &transport));
    replicas.back()->LoadKey("k", "0", Timestamp{1, 0});
  }

  SessionOptions normal;
  normal.quorum = QuorumConfig::ForReplicas(3);
  SessionOptions lagging = normal;
  lagging.clock_skew_ns = -5'000'000'000;  // 5s behind... clamped to >= 1 internally.

  MeerkatSession fast_client(1, &transport, &time_source, normal, 5);
  MeerkatSession slow_client(2, &transport, &time_source, lagging, 6);

  int slow_commits = 0;
  int slow_aborts = 0;
  for (int i = 0; i < 30; i++) {
    MeerkatSession& session = (i % 2 == 0) ? fast_client : slow_client;
    std::optional<TxnResult> result;
    TxnPlan plan;
    plan.ops.push_back(Op::Rmw("k", "i" + std::to_string(i)));
    sim.Schedule(sim.now() + 1, transport.ActorFor(Address::Client(session.client_id()), 0),
                 [&](SimContext&) {
                   session.ExecuteAsync(plan,
                                        [&result](const TxnOutcome& o) { result = o.result; });
                 });
    sim.Run();
    ASSERT_TRUE(result.has_value());
    if (&session == &slow_client) {
      (*result == TxnResult::kCommit ? slow_commits : slow_aborts)++;
    }
  }
  // The laggard makes no *incorrect* progress: sequential (non-overlapping)
  // execution means even a skewed transaction validates cleanly — its reads
  // are current and its old timestamps fail only against *newer* state. What
  // matters: replicas agree and versions are consistent.
  ReadResult a = replicas[0]->store().Read("k");
  ReadResult b = replicas[1]->store().Read("k");
  ReadResult c = replicas[2]->store().Read("k");
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(b.value, c.value);
  EXPECT_EQ(a.wts, b.wts);
  // Skewed writes that committed never overwrote newer data: the final
  // version belongs to the fast client's last committed write (its clock
  // dominates) unless the laggard's write legitimately aborted.
  EXPECT_GT(slow_commits + slow_aborts, 0);
}

}  // namespace
}  // namespace meerkat
