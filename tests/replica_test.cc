// Unit tests for MeerkatReplica's message handlers, driven directly through
// a loopback transport that records replies.

#include <gtest/gtest.h>

#include <memory>

#include "src/protocol/replica.h"

namespace meerkat {
namespace {

// Captures everything; delivers replica-bound traffic to the replica
// synchronously so a test can poke one replica in isolation.
class LoopbackTransport : public Transport {
 public:
  void RegisterReplica(ReplicaId, CoreId core, TransportReceiver* receiver) override {
    if (receivers_.size() <= core) {
      receivers_.resize(core + 1);
    }
    receivers_[core] = receiver;
  }
  void RegisterClient(uint32_t, TransportReceiver*) override {}
  void UnregisterClient(uint32_t) override {}
  void SetTimer(const Address&, CoreId, uint64_t, uint64_t) override {}

  void Send(Message msg) override {
    if (msg.dst.kind == Address::Kind::kReplica && msg.dst.id == 0 && !deliver_loopback_) {
      // Replies and self-messages: record only.
      sent.push_back(std::move(msg));
      return;
    }
    sent.push_back(std::move(msg));
  }

  // Inject a message as if it arrived from the network.
  void Inject(CoreId core, Message msg) { receivers_[core]->Receive(std::move(msg)); }

  template <typename T>
  const T* LastReply() const {
    for (auto it = sent.rbegin(); it != sent.rend(); ++it) {
      if (const T* p = std::get_if<T>(&it->payload)) {
        return p;
      }
    }
    return nullptr;
  }

  std::vector<Message> sent;
  bool deliver_loopback_ = false;

 private:
  std::vector<TransportReceiver*> receivers_;
};

class ReplicaFixture : public ::testing::Test {
 protected:
  ReplicaFixture() {
    replica_ = std::make_unique<MeerkatReplica>(0, QuorumConfig::ForReplicas(3), 2, &transport_);
    replica_->LoadKey("k", "v0", Timestamp{1, 0});
  }

  Message From(uint32_t client, CoreId core, Payload payload) {
    Message msg;
    msg.src = Address::Client(client);
    msg.dst = Address::Replica(0);
    msg.core = core;
    msg.payload = std::move(payload);
    return msg;
  }

  ValidateRequest Validate(TxnId tid, Timestamp ts) {
    return ValidateRequest{tid, ts, {{"k", Timestamp{1, 0}}}, {{"k", "new"}}};
  }

  LoopbackTransport transport_;
  std::unique_ptr<MeerkatReplica> replica_;
};

TEST_F(ReplicaFixture, GetReturnsValueAndVersion) {
  transport_.Inject(0, From(1, 0, GetRequest{{1, 1}, 5, "k"}));
  const GetReply* reply = transport_.LastReply<GetReply>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->found);
  EXPECT_EQ(reply->value, "v0");
  EXPECT_EQ(reply->wts, (Timestamp{1, 0}));
  EXPECT_EQ(reply->req_seq, 5u);
}

TEST_F(ReplicaFixture, ValidateOkRegistersAndRecords) {
  transport_.Inject(1, From(1, 1, Validate({1, 1}, {50, 1})));
  const ValidateReply* reply = transport_.LastReply<ValidateReply>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(reply->epoch, 0u);
  // Record landed in the *core-1* partition.
  EXPECT_NE(replica_->trecord().Partition(1).Find({1, 1}), nullptr);
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);
  // Registrations exist.
  KeyEntry* entry = replica_->store().Find("k");
  EXPECT_EQ(entry->readers.size(), 1u);
  EXPECT_EQ(entry->writers.size(), 1u);
}

TEST_F(ReplicaFixture, DuplicateValidateRepliesRecordedVoteWithoutReRegistering) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  const ValidateReply* reply = transport_.LastReply<ValidateReply>();
  EXPECT_EQ(reply->status, TxnStatus::kValidatedOk);
  KeyEntry* entry = replica_->store().Find("k");
  EXPECT_EQ(entry->readers.size(), 1u) << "duplicate validate double-registered";
  EXPECT_EQ(entry->writers.size(), 1u);
}

TEST_F(ReplicaFixture, CommitInstallsAndCleansUp) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, true}));
  EXPECT_EQ(replica_->store().Read("k").value, "new");
  EXPECT_EQ(replica_->store().Read("k").wts, (Timestamp{50, 1}));
  KeyEntry* entry = replica_->store().Find("k");
  EXPECT_TRUE(entry->readers.empty());
  EXPECT_TRUE(entry->writers.empty());
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1})->status, TxnStatus::kCommitted);
  // Duplicate commit: no effect.
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, true}));
  EXPECT_EQ(replica_->store().Read("k").value, "new");
}

TEST_F(ReplicaFixture, AbortCleansUpWithoutInstalling) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, false}));
  EXPECT_EQ(replica_->store().Read("k").value, "v0");
  KeyEntry* entry = replica_->store().Find("k");
  EXPECT_TRUE(entry->readers.empty());
  EXPECT_TRUE(entry->writers.empty());
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1})->status, TxnStatus::kAborted);
}

TEST_F(ReplicaFixture, AcceptRespectsViewOrdering) {
  // Promise view 5 via a coordinator change.
  transport_.Inject(0, From(9, 0, CoordChangeRequest{{1, 1}, 5}));
  const CoordChangeAck* promise = transport_.LastReply<CoordChangeAck>();
  ASSERT_NE(promise, nullptr);
  EXPECT_TRUE(promise->ok);

  // A view-3 accept is rejected; view-6 is accepted.
  transport_.Inject(0, From(9, 0, AcceptRequest{{1, 1}, 3, true, {50, 1}, {}, {{"k", "x"}}}));
  EXPECT_FALSE(transport_.LastReply<AcceptReply>()->ok);
  transport_.Inject(0, From(9, 0, AcceptRequest{{1, 1}, 6, true, {50, 1}, {}, {{"k", "x"}}}));
  EXPECT_TRUE(transport_.LastReply<AcceptReply>()->ok);
  TxnRecord* rec = replica_->trecord().Partition(0).Find({1, 1});
  EXPECT_EQ(rec->status, TxnStatus::kAcceptCommit);
  EXPECT_EQ(rec->accept_view, 6u);
  EXPECT_TRUE(rec->accepted);
}

TEST_F(ReplicaFixture, AcceptOnFinalizedRecordAgreesOrRejects) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  transport_.Inject(0, From(1, 0, CommitRequest{{1, 1}, true}));
  transport_.Inject(0, From(9, 0, AcceptRequest{{1, 1}, 2, true, {50, 1}, {}, {}}));
  EXPECT_TRUE(transport_.LastReply<AcceptReply>()->ok);  // Agrees with COMMITTED.
  transport_.Inject(0, From(9, 0, AcceptRequest{{1, 1}, 3, false, {50, 1}, {}, {}}));
  EXPECT_FALSE(transport_.LastReply<AcceptReply>()->ok);  // Contradicts it.
}

TEST_F(ReplicaFixture, AcceptTeachesUnknownTransaction) {
  // A replica that missed VALIDATE learns the payload from ACCEPT and can
  // then apply the commit.
  transport_.Inject(0, From(9, 0, AcceptRequest{{7, 7}, 0, true, {60, 2}, {}, {{"k", "taught"}}}));
  EXPECT_TRUE(transport_.LastReply<AcceptReply>()->ok);
  transport_.Inject(0, From(9, 0, CommitRequest{{7, 7}, true}));
  EXPECT_EQ(replica_->store().Read("k").value, "taught");
}

TEST_F(ReplicaFixture, CoordChangeReturnsRecordSnapshot) {
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  transport_.Inject(0, From(9, 0, CoordChangeRequest{{1, 1}, 2}));
  const CoordChangeAck* ack = transport_.LastReply<CoordChangeAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_TRUE(ack->ok);
  ASSERT_TRUE(ack->has_record);
  EXPECT_EQ(ack->record.status, TxnStatus::kValidatedOk);
  EXPECT_EQ(ack->record.ts, (Timestamp{50, 1}));
  ASSERT_EQ(ack->record.write_set.size(), 1u);

  // A lower-view change is now rejected and reports the promised view.
  transport_.Inject(0, From(8, 0, CoordChangeRequest{{1, 1}, 1}));
  const CoordChangeAck* nack = transport_.LastReply<CoordChangeAck>();
  EXPECT_FALSE(nack->ok);
  EXPECT_EQ(nack->view, 2u);
}

TEST_F(ReplicaFixture, RecoveringReplicaServesNothing) {
  replica_->CrashAndRestart();
  ASSERT_TRUE(replica_->waiting_recovery());
  size_t sent_before = transport_.sent.size();
  transport_.Inject(0, From(1, 0, GetRequest{{1, 1}, 1, "k"}));
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  EXPECT_EQ(transport_.sent.size(), sent_before) << "recovering replica answered traffic";
  EXPECT_FALSE(replica_->store().Read("k").found);
}

TEST_F(ReplicaFixture, ValidationPausedDuringEpochChange) {
  // Deliver an epoch-change request from a peer: the replica acks and stops
  // validating until the change completes.
  Message ec;
  ec.src = Address::Replica(1);
  ec.dst = Address::Replica(0);
  ec.core = 0;
  ec.payload = EpochChangeRequest{1};
  transport_.Inject(0, std::move(ec));
  EXPECT_TRUE(replica_->epoch_change_in_progress());
  EXPECT_EQ(replica_->epoch(), 1u);
  const EpochChangeAck* ack = transport_.LastReply<EpochChangeAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(ack->epoch, 1u);
  EXPECT_FALSE(ack->recovering);
  ASSERT_EQ(ack->store_state.size(), 1u);
  EXPECT_EQ(ack->store_state[0].key, "k");

  size_t sent_before = transport_.sent.size();
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  EXPECT_EQ(transport_.sent.size(), sent_before) << "validated during epoch change";
  // Reads stay available (the paper pauses only validation).
  transport_.Inject(0, From(1, 0, GetRequest{{1, 1}, 1, "k"}));
  EXPECT_GT(transport_.sent.size(), sent_before);

  // Completion resumes validation.
  Message complete;
  complete.src = Address::Replica(1);
  complete.dst = Address::Replica(0);
  complete.core = 0;
  complete.payload = EpochChangeComplete{1, {}, {}, {}};
  transport_.Inject(0, std::move(complete));
  EXPECT_FALSE(replica_->epoch_change_in_progress());
  transport_.Inject(0, From(1, 0, Validate({1, 1}, {50, 1})));
  EXPECT_EQ(transport_.LastReply<ValidateReply>()->epoch, 1u);
}

}  // namespace
}  // namespace meerkat
