// Unit tests for quorum arithmetic, the epoch-change merge rules (§5.3.1),
// and the backup-coordinator outcome priorities (§5.3.2).

#include <gtest/gtest.h>

#include "src/protocol/epoch_merge.h"
#include "src/protocol/quorum.h"

namespace meerkat {
namespace {

TEST(QuorumTest, SizesForSmallF) {
  QuorumConfig f1 = QuorumConfig::ForReplicas(3);
  EXPECT_EQ(f1.f, 1u);
  EXPECT_EQ(f1.Majority(), 2u);
  EXPECT_EQ(f1.SuperMajority(), 3u);  // f + ceil(f/2) + 1 = 1+1+1.
  EXPECT_EQ(f1.FastWitness(), 2u);    // ceil(f/2) + 1.

  QuorumConfig f2 = QuorumConfig::ForReplicas(5);
  EXPECT_EQ(f2.f, 2u);
  EXPECT_EQ(f2.Majority(), 3u);
  EXPECT_EQ(f2.SuperMajority(), 4u);  // 2+1+1.
  EXPECT_EQ(f2.FastWitness(), 2u);

  QuorumConfig f3 = QuorumConfig::ForReplicas(7);
  EXPECT_EQ(f3.f, 3u);
  EXPECT_EQ(f3.Majority(), 4u);
  EXPECT_EQ(f3.SuperMajority(), 6u);  // 3+2+1.
  EXPECT_EQ(f3.FastWitness(), 3u);
}

TEST(QuorumTest, FastQuorumIntersectsMajorityInFastWitness) {
  // The recovery safety argument (§5.4): any majority quorum intersects any
  // supermajority quorum in at least FastWitness replicas.
  for (size_t n : {3u, 5u, 7u, 9u, 11u}) {
    QuorumConfig q = QuorumConfig::ForReplicas(n);
    size_t min_intersection = q.SuperMajority() + q.Majority() - q.n;
    EXPECT_GE(min_intersection, q.FastWitness()) << "n=" << n;
  }
}

TEST(QuorumTest, FastPathStillPossible) {
  QuorumConfig q = QuorumConfig::ForReplicas(3);
  // 1 matching of 1 received: 2 outstanding could still match -> possible.
  EXPECT_TRUE(q.FastPathStillPossible(1, 1));
  // 1 matching of 2 received: 1 outstanding -> max 2 matching < 3.
  EXPECT_FALSE(q.FastPathStillPossible(1, 2));
  EXPECT_TRUE(q.FastPathStillPossible(2, 2));
  EXPECT_FALSE(q.FastPathStillPossible(2, 3));
  EXPECT_TRUE(q.FastPathStillPossible(3, 3));
}

// --- Epoch merge ---

TxnRecordSnapshot Snap(TxnId tid, TxnStatus status, Timestamp ts = Timestamp{50, 1},
                       ViewNum accept_view = 0, bool accepted = false) {
  TxnRecordSnapshot s;
  s.tid = tid;
  s.ts = ts;
  s.status = status;
  s.accept_view = accept_view;
  s.accepted = accepted;
  s.core = 0;
  s.read_set = {{"k", Timestamp{1, 0}}};
  s.write_set = {{"k", "v"}};
  return s;
}

EpochChangeAck Ack(ReplicaId from, std::vector<TxnRecordSnapshot> records) {
  EpochChangeAck ack;
  ack.epoch = 1;
  ack.from = from;
  ack.records = std::move(records);
  return ack;
}

const QuorumConfig kQ3 = QuorumConfig::ForReplicas(3);
const TxnId kTid{1, 1};

TxnStatus MergedStatus(const MergedEpochState& merged, TxnId tid) {
  for (const TxnRecordSnapshot& rec : merged.records) {
    if (rec.tid == tid) {
      return rec.status;
    }
  }
  return TxnStatus::kNone;
}

TEST(EpochMergeTest, Rule1FinalOutcomeWins) {
  // One replica finalized COMMITTED; another still has VALIDATED-ABORT.
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kCommitted)}),
            Ack(1, {Snap(kTid, TxnStatus::kValidatedAbort)})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kCommitted);
}

TEST(EpochMergeTest, Rule1AbortedWins) {
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kAborted)}),
            Ack(1, {Snap(kTid, TxnStatus::kValidatedOk)})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kAborted);
}

TEST(EpochMergeTest, Rule2HighestAcceptViewWins) {
  // Two accepted proposals in different views: view 3 (abort) must beat
  // view 1 (commit).
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kAcceptCommit, Timestamp{50, 1}, 1, true)}),
            Ack(1, {Snap(kTid, TxnStatus::kAcceptAbort, Timestamp{50, 1}, 3, true)})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kAborted);
}

TEST(EpochMergeTest, Rule3MajorityValidatedOkCommits) {
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kValidatedOk)}),
            Ack(1, {Snap(kTid, TxnStatus::kValidatedOk)})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kCommitted);
}

TEST(EpochMergeTest, Rule3MajorityValidatedAbortAborts) {
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kValidatedAbort)}),
            Ack(1, {Snap(kTid, TxnStatus::kValidatedAbort)})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kAborted);
}

TEST(EpochMergeTest, Rule4PossibleFastCommitRevalidatesOk) {
  // Only one VALIDATED-OK visible in a 2-ack quorum at n=3 (FastWitness=2
  // needs 2)... with exactly FastWitness(=2) OKs, the txn might have
  // fast-committed; re-validation against the merged committed state decides.
  // Here nothing conflicts, so it commits.
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kValidatedOk)}),
            Ack(1, {Snap(kTid, TxnStatus::kValidatedOk)}),
            Ack(2, {})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kCommitted);
}

TEST(EpochMergeTest, Rule4RevalidationAbortsOnConflict) {
  // The possibly-fast-committed txn read version {1,0} of "k", but another
  // COMMITTED txn wrote "k" at ts {40,2} < our ts {50,1}: re-validation must
  // abort (the read is stale in the merged committed state).
  QuorumConfig q5 = QuorumConfig::ForReplicas(5);
  TxnId other{2, 1};
  TxnRecordSnapshot committed = Snap(other, TxnStatus::kCommitted, Timestamp{40, 2});
  // With n=5 (FastWitness=2 < Majority=3), 2 OKs of 3 acks trigger rule 4.
  MergedEpochState merged = MergeEpochState(
      q5, {Ack(0, {Snap(kTid, TxnStatus::kValidatedOk), committed}),
           Ack(1, {Snap(kTid, TxnStatus::kValidatedOk)}),
           Ack(2, {committed})});
  EXPECT_EQ(MergedStatus(merged, other), TxnStatus::kCommitted);
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kAborted);
}

TEST(EpochMergeTest, Rule5UnknownTransactionsAbort) {
  // A single VALIDATED-OK at n=5 is below FastWitness(2): abort.
  QuorumConfig q5 = QuorumConfig::ForReplicas(5);
  MergedEpochState merged = MergeEpochState(
      q5, {Ack(0, {Snap(kTid, TxnStatus::kValidatedOk)}), Ack(1, {}), Ack(2, {})});
  EXPECT_EQ(MergedStatus(merged, kTid), TxnStatus::kAborted);
}

TEST(EpochMergeTest, StoreStateTakesMaxVersionPerKey) {
  EpochChangeAck a = Ack(0, {});
  a.store_state = {{"k", "old"}};
  a.store_versions = {Timestamp{5, 0}};
  EpochChangeAck b = Ack(1, {});
  b.store_state = {{"k", "new"}, {"j", "x"}};
  b.store_versions = {Timestamp{9, 0}, Timestamp{2, 0}};
  MergedEpochState merged = MergeEpochState(kQ3, {a, b});
  ASSERT_EQ(merged.store_state.size(), 2u);
  for (size_t i = 0; i < merged.store_state.size(); i++) {
    if (merged.store_state[i].key == "k") {
      EXPECT_EQ(merged.store_state[i].value, "new");
      EXPECT_EQ(merged.store_versions[i], (Timestamp{9, 0}));
    } else {
      EXPECT_EQ(merged.store_state[i].key, "j");
    }
  }
}

TEST(EpochMergeTest, MergedRecordsAreAllFinal) {
  MergedEpochState merged = MergeEpochState(
      kQ3, {Ack(0, {Snap(kTid, TxnStatus::kValidatedOk), Snap(TxnId{9, 9}, TxnStatus::kNone)}),
            Ack(1, {Snap(kTid, TxnStatus::kValidatedAbort)})});
  for (const TxnRecordSnapshot& rec : merged.records) {
    EXPECT_TRUE(IsFinal(rec.status)) << rec.tid.ToString();
    EXPECT_FALSE(rec.accepted);
  }
}

// --- Backup-coordinator outcome selection ---

CoordChangeAck CcAck(ReplicaId from, bool has_record, TxnRecordSnapshot record = {}) {
  CoordChangeAck ack;
  ack.tid = kTid;
  ack.view = 1;
  ack.ok = true;
  ack.from = from;
  ack.has_record = has_record;
  ack.record = std::move(record);
  return ack;
}

TEST(RecoveryOutcomeTest, Priority1CompletedWins) {
  EXPECT_TRUE(ChooseRecoveryOutcome(
      kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kCommitted)),
            CcAck(1, true, Snap(kTid, TxnStatus::kValidatedAbort))}));
  EXPECT_FALSE(ChooseRecoveryOutcome(
      kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kAborted)),
            CcAck(1, true, Snap(kTid, TxnStatus::kValidatedOk))}));
}

TEST(RecoveryOutcomeTest, Priority2HighestAcceptView) {
  EXPECT_FALSE(ChooseRecoveryOutcome(
      kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kAcceptCommit, Timestamp{50, 1}, 1, true)),
            CcAck(1, true, Snap(kTid, TxnStatus::kAcceptAbort, Timestamp{50, 1}, 2, true))}));
  EXPECT_TRUE(ChooseRecoveryOutcome(
      kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kAcceptCommit, Timestamp{50, 1}, 5, true)),
            CcAck(1, true, Snap(kTid, TxnStatus::kAcceptAbort, Timestamp{50, 1}, 2, true))}));
}

TEST(RecoveryOutcomeTest, Priority3MajorityValidated) {
  EXPECT_TRUE(ChooseRecoveryOutcome(kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kValidatedOk)),
                                          CcAck(1, true, Snap(kTid, TxnStatus::kValidatedOk)),
                                          CcAck(2, false)}));
  EXPECT_FALSE(
      ChooseRecoveryOutcome(kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kValidatedAbort)),
                                  CcAck(1, true, Snap(kTid, TxnStatus::kValidatedAbort))}));
}

TEST(RecoveryOutcomeTest, Priority4PossibleFastCommit) {
  QuorumConfig q5 = QuorumConfig::ForReplicas(5);
  // 2 OKs of 3 replies at n=5: below Majority(3) but at FastWitness(2).
  EXPECT_TRUE(ChooseRecoveryOutcome(q5, {CcAck(0, true, Snap(kTid, TxnStatus::kValidatedOk)),
                                         CcAck(1, true, Snap(kTid, TxnStatus::kValidatedOk)),
                                         CcAck(2, false)}));
}

TEST(RecoveryOutcomeTest, Priority5NothingKnownAborts) {
  EXPECT_FALSE(ChooseRecoveryOutcome(kQ3, {CcAck(0, false), CcAck(1, false)}));
  EXPECT_FALSE(ChooseRecoveryOutcome(
      kQ3, {CcAck(0, true, Snap(kTid, TxnStatus::kValidatedAbort)), CcAck(1, false)}));
}

TEST(RecoveryOutcomeTest, FindPayloadPrefersRecordWithSets) {
  TxnRecordSnapshot empty;
  empty.tid = kTid;
  empty.ts = Timestamp{50, 1};
  auto found = FindPayloadSnapshot(
      {CcAck(0, true, empty), CcAck(1, true, Snap(kTid, TxnStatus::kValidatedOk))});
  ASSERT_TRUE(found.has_value());
  EXPECT_FALSE(found->write_set.empty());
  EXPECT_FALSE(FindPayloadSnapshot({CcAck(0, false)}).has_value());
}

}  // namespace
}  // namespace meerkat
