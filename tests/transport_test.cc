// Unit tests for the transport substrate: channel, fault injector, threaded
// transport (delivery, core affinity, timers), and simulated transport
// (latency, CPU charging, coordination accounting).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/sim/sim_time_source.h"
#include "src/sim/simulator.h"
#include "src/transport/channel.h"
#include "src/transport/fault_injector.h"
#include "src/transport/sim_transport.h"
#include "src/transport/threaded_transport.h"

namespace meerkat {
namespace {

TEST(ChannelTest, PushPopFifo) {
  Channel<int> channel;
  channel.Push(1);
  channel.Push(2);
  EXPECT_EQ(channel.TryPop().value(), 1);
  EXPECT_EQ(channel.TryPop().value(), 2);
  EXPECT_FALSE(channel.TryPop().has_value());
}

TEST(ChannelTest, CloseUnblocksAndRejects) {
  Channel<int> channel;
  std::thread waiter([&] {
    // Blocks until close.
    EXPECT_FALSE(channel.Pop().has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  channel.Close();
  waiter.join();
  EXPECT_FALSE(channel.Push(1));
  EXPECT_TRUE(channel.closed());
}

TEST(ChannelTest, PopForTimesOut) {
  Channel<int> channel;
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(channel.PopFor(std::chrono::milliseconds(20)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(15));
  channel.Push(7);
  EXPECT_EQ(channel.PopFor(std::chrono::milliseconds(20)).value(), 7);
}

TEST(ChannelTest, CrossThreadHandoff) {
  Channel<int> channel;
  std::thread producer([&] {
    for (int i = 0; i < 1000; i++) {
      channel.Push(i);
    }
  });
  int sum = 0;
  for (int i = 0; i < 1000; i++) {
    sum += channel.Pop().value();
  }
  producer.join();
  EXPECT_EQ(sum, 499500);
}

TEST(FaultInjectorTest, DefaultPassesEverything) {
  FaultInjector faults;
  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Replica(0);
  for (int i = 0; i < 100; i++) {
    FaultInjector::Verdict v = faults.Judge(msg);
    EXPECT_FALSE(v.drop);
    EXPECT_FALSE(v.duplicate);
    EXPECT_EQ(v.extra_delay_ns, 0u);
  }
}

TEST(FaultInjectorTest, DropProbabilityRoughlyHolds) {
  FaultInjector faults;
  faults.SetDropProbability(0.3);
  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Replica(0);
  int drops = 0;
  for (int i = 0; i < 10000; i++) {
    if (faults.Judge(msg).drop) {
      drops++;
    }
  }
  EXPECT_NEAR(drops, 3000, 300);
  EXPECT_GT(faults.dropped(), 0u);
}

TEST(FaultInjectorTest, CrashedReplicaDropsBothDirections) {
  FaultInjector faults;
  faults.CrashReplica(1);
  Message to_crashed;
  to_crashed.src = Address::Client(1);
  to_crashed.dst = Address::Replica(1);
  Message from_crashed;
  from_crashed.src = Address::Replica(1);
  from_crashed.dst = Address::Client(1);
  Message unrelated;
  unrelated.src = Address::Client(1);
  unrelated.dst = Address::Replica(0);
  EXPECT_TRUE(faults.Judge(to_crashed).drop);
  EXPECT_TRUE(faults.Judge(from_crashed).drop);
  EXPECT_FALSE(faults.Judge(unrelated).drop);
  EXPECT_TRUE(faults.IsCrashed(1));
  faults.RecoverReplica(1);
  EXPECT_FALSE(faults.Judge(to_crashed).drop);
}

TEST(FaultInjectorTest, DirectedLinkBlocks) {
  FaultInjector faults;
  faults.BlockLink(Address::Replica(0), Address::Replica(1));
  Message forward;
  forward.src = Address::Replica(0);
  forward.dst = Address::Replica(1);
  Message reverse;
  reverse.src = Address::Replica(1);
  reverse.dst = Address::Replica(0);
  EXPECT_TRUE(faults.Judge(forward).drop);
  EXPECT_FALSE(faults.Judge(reverse).drop);  // Directed.
  faults.UnblockLink(Address::Replica(0), Address::Replica(1));
  EXPECT_FALSE(faults.Judge(forward).drop);
}

class Collector : public TransportReceiver {
 public:
  void Receive(Message&& msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    messages_.push_back(std::move(msg));
    count_.fetch_add(1, std::memory_order_release);
  }

  size_t Count() const { return count_.load(std::memory_order_acquire); }

  std::vector<Message> Take() {
    std::lock_guard<std::mutex> lock(mu_);
    return messages_;
  }

  bool WaitFor(size_t n, int timeout_ms = 2000) {
    for (int i = 0; i < timeout_ms; i++) {
      if (Count() >= n) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Count() >= n;
  }

 private:
  std::mutex mu_;
  std::vector<Message> messages_;
  std::atomic<size_t> count_{0};
};

TEST(ThreadedTransportTest, RoutesByReplicaAndCore) {
  ThreadedTransport transport;
  Collector core0;
  Collector core1;
  Collector client;
  transport.RegisterReplica(0, 0, &core0);
  transport.RegisterReplica(0, 1, &core1);
  transport.RegisterClient(7, &client);

  Message msg;
  msg.src = Address::Client(7);
  msg.dst = Address::Replica(0);
  msg.core = 1;
  msg.payload = GetRequest{};
  transport.Send(msg);
  msg.core = 0;
  transport.Send(msg);
  msg.core = 0;
  transport.Send(msg);

  ASSERT_TRUE(core0.WaitFor(2));
  ASSERT_TRUE(core1.WaitFor(1));
  EXPECT_EQ(core0.Count(), 2u);
  EXPECT_EQ(core1.Count(), 1u);
  EXPECT_EQ(client.Count(), 0u);
  transport.Stop();
}

TEST(ThreadedTransportTest, SendToUnregisteredEndpointIsDropped) {
  ThreadedTransport transport;
  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Replica(9);
  msg.payload = GetRequest{};
  transport.Send(msg);  // Must not crash.
  transport.Stop();
}

TEST(ThreadedTransportTest, TimerFires) {
  ThreadedTransport transport;
  Collector client;
  transport.RegisterClient(1, &client);
  transport.SetTimer(Address::Client(1), 0, 5'000'000, 42);  // 5 ms.
  ASSERT_TRUE(client.WaitFor(1));
  auto messages = client.Take();
  const auto* fire = std::get_if<TimerFire>(&messages[0].payload);
  ASSERT_NE(fire, nullptr);
  EXPECT_EQ(fire->timer_id, 42u);
  transport.Stop();
}

TEST(ThreadedTransportTest, DelayedDeliveryArrivesLater) {
  ThreadedTransport transport(/*base_delay_ns=*/10'000'000);  // 10 ms.
  Collector client;
  transport.RegisterClient(1, &client);
  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Client(1);
  msg.payload = PutReply{1};
  auto start = std::chrono::steady_clock::now();
  transport.Send(msg);
  ASSERT_TRUE(client.WaitFor(1));
  EXPECT_GE(std::chrono::steady_clock::now() - start, std::chrono::milliseconds(8));
  transport.Stop();
}

TEST(ThreadedTransportTest, DuplicationDeliversTwice) {
  ThreadedTransport transport;
  Collector client;
  transport.RegisterClient(1, &client);
  transport.faults().SetDuplicateProbability(1.0);
  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Client(1);
  msg.payload = PutReply{1};
  transport.Send(msg);
  ASSERT_TRUE(client.WaitFor(2));
  EXPECT_EQ(client.Count(), 2u);
  transport.Stop();
}

TEST(SimTransportTest, DeliveryChargesLatencyAndCpu) {
  CostModel cost;
  cost.one_way_latency_ns = 2000;
  cost.msg_recv_cpu_ns = 850;
  Simulator sim(cost);
  SimTransport transport(&sim);

  struct Recorder : TransportReceiver {
    uint64_t received_at = 0;
    void Receive(Message&&) override { received_at = SimContext::Current()->now(); }
  };
  Recorder recorder;
  transport.RegisterReplica(0, 0, &recorder);

  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Replica(0);
  msg.payload = GetRequest{};
  transport.Send(std::move(msg));  // Sent outside a handler at t=0.
  sim.Run();
  // Delivered at latency, then the receive CPU charge lands before the
  // handler body runs.
  EXPECT_EQ(recorder.received_at, 2000u + 850u);
}

TEST(SimTransportTest, CountsCoordinationByEndpointKinds) {
  CostModel cost;
  Simulator sim(cost);
  SimTransport transport(&sim);

  struct Forwarder : TransportReceiver {
    Transport* transport = nullptr;
    void Receive(Message&&) override {
      Message out;
      out.src = Address::Replica(0);
      out.dst = Address::Replica(1);
      out.payload = ReplicateRequest{};
      transport->Send(std::move(out));
    }
  };
  struct Sink : TransportReceiver {
    int count = 0;
    void Receive(Message&&) override { count++; }
  };
  Forwarder replica0;
  replica0.transport = &transport;
  Sink replica1;
  transport.RegisterReplica(0, 0, &replica0);
  transport.RegisterReplica(1, 0, &replica1);

  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Replica(0);
  msg.payload = GetRequest{};
  transport.Send(std::move(msg));
  sim.Run();
  EXPECT_EQ(replica1.count, 1);
  // The replica-originated message was counted as replica-to-replica (the
  // client-originated one was sent outside a handler, so it is not counted).
  EXPECT_EQ(sim.context().stats().replica_to_replica_msgs, 1u);
}

TEST(SimTransportTest, FaultInjectionDropsInSimToo) {
  CostModel cost;
  Simulator sim(cost);
  SimTransport transport(&sim);
  struct Sink : TransportReceiver {
    int count = 0;
    void Receive(Message&&) override { count++; }
  };
  Sink sink;
  transport.RegisterReplica(0, 0, &sink);
  transport.faults().SetDropProbability(1.0);
  Message msg;
  msg.src = Address::Client(1);
  msg.dst = Address::Replica(0);
  msg.payload = GetRequest{};
  transport.Send(std::move(msg));
  sim.Run();
  EXPECT_EQ(sink.count, 0);
}

}  // namespace
}  // namespace meerkat
