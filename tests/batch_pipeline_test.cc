// Batched delivery pipeline tests: DispatchBatch semantics (one gate
// acquisition, one OCC sweep, staged replies) driven synchronously through a
// loopback transport; the governor's host-aware clamps; Channel::PushAll; and
// fault-matrix cells asserting that drop/duplicate/delay of messages that ride
// a coalesced batch behave exactly per logical message (the injector judges
// before coalescing).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/api/blocking_client.h"
#include "src/protocol/replica.h"
#include "src/transport/channel.h"
#include "tests/test_util.h"

namespace meerkat {
namespace {

// Captures everything the replica sends; InjectBatch drives the batched
// receive path exactly like a transport worker handing over a drained inbox.
class LoopbackTransport : public Transport {
 public:
  void RegisterReplica(ReplicaId, CoreId core, TransportReceiver* receiver) override {
    if (receivers_.size() <= core) {
      receivers_.resize(core + 1);
    }
    receivers_[core] = receiver;
  }
  void RegisterClient(uint32_t, TransportReceiver*) override {}
  void UnregisterClient(uint32_t) override {}
  void SetTimer(const Address&, CoreId, uint64_t, uint64_t) override {}
  void Send(Message msg) override { sent.push_back(std::move(msg)); }

  void InjectBatch(CoreId core, std::vector<Message> msgs) {
    receivers_[core]->ReceiveBatch(msgs.data(), msgs.size());
  }

  std::vector<Message> sent;

 private:
  std::vector<TransportReceiver*> receivers_;
};

class BatchDispatchFixture : public ::testing::Test {
 protected:
  BatchDispatchFixture() {
    replica_ = std::make_unique<MeerkatReplica>(0, QuorumConfig::ForReplicas(3), 2, &transport_);
    for (int i = 0; i < 16; i++) {
      replica_->LoadKey(Key(i), "v0", Timestamp{1, 0});
    }
  }

  static std::string Key(int i) { return "key-" + std::to_string(i); }

  Message From(uint32_t client, CoreId core, Payload payload) {
    Message msg;
    msg.src = Address::Client(client);
    msg.dst = Address::Replica(0);
    msg.core = core;
    msg.payload = std::move(payload);
    return msg;
  }

  // Single-key RMW validate on key i with a current read version.
  Message ValidateOn(int i, TxnId tid, Timestamp ts, Timestamp read_wts = {1, 0}) {
    return From(tid.client_id, 0,
                ValidateRequest{tid, ts, {{Key(i), read_wts}}, {{Key(i), "new"}}});
  }

  std::vector<const ValidateReply*> ValidateReplies() {
    std::vector<const ValidateReply*> replies;
    for (const Message& m : transport_.sent) {
      if (const auto* p = std::get_if<ValidateReply>(&m.payload)) {
        replies.push_back(p);
      }
    }
    return replies;
  }

  LoopbackTransport transport_;
  std::unique_ptr<MeerkatReplica> replica_;
};

TEST_F(BatchDispatchFixture, BatchOfValidatesRepliesPerMessageInOrder) {
  std::vector<Message> batch;
  for (int i = 0; i < 8; i++) {
    batch.push_back(
        ValidateOn(i, {1, static_cast<uint64_t>(i + 1)}, {static_cast<uint64_t>(50 + i), 1}));
  }
  transport_.InjectBatch(0, std::move(batch));

  std::vector<const ValidateReply*> replies = ValidateReplies();
  ASSERT_EQ(replies.size(), 8u);
  for (int i = 0; i < 8; i++) {
    EXPECT_EQ(replies[i]->tid.seq, static_cast<uint64_t>(i + 1)) << "reply order broken";
    EXPECT_EQ(replies[i]->status, TxnStatus::kValidatedOk);
  }
  // Every registration landed: one reader + one writer per distinct key.
  for (int i = 0; i < 8; i++) {
    KeyEntry* entry = replica_->store().Find(Key(i));
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->readers.size(), 1u);
    EXPECT_EQ(entry->writers.size(), 1u);
    EXPECT_NE(replica_->trecord().Partition(0).Find({1, static_cast<uint64_t>(i + 1)}),
              nullptr);
  }
}

TEST_F(BatchDispatchFixture, AbortInsideBatchIsPerMessage) {
  std::vector<Message> batch;
  batch.push_back(ValidateOn(0, {1, 1}, {50, 1}));
  // Stale read: the loaded version is {1,0}, this txn read an older one.
  batch.push_back(ValidateOn(1, {1, 2}, {51, 1}, /*read_wts=*/{0, 0}));
  batch.push_back(ValidateOn(2, {1, 3}, {52, 1}));
  transport_.InjectBatch(0, std::move(batch));

  std::vector<const ValidateReply*> replies = ValidateReplies();
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0]->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(replies[1]->status, TxnStatus::kValidatedAbort);
  EXPECT_EQ(replies[2]->status, TxnStatus::kValidatedOk);
  // The aborted txn backed out: no registrations left on its key.
  KeyEntry* entry = replica_->store().Find(Key(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->readers.empty());
  EXPECT_TRUE(entry->writers.empty());
}

TEST_F(BatchDispatchFixture, InBatchDuplicateValidateReportsWithoutReRegistering) {
  // A duplicate-fault retransmission can land in the same drained batch as
  // the original. Both must be answered, and OCC must register once.
  std::vector<Message> batch;
  batch.push_back(ValidateOn(0, {1, 1}, {50, 1}));
  batch.push_back(ValidateOn(0, {1, 1}, {50, 1}));
  transport_.InjectBatch(0, std::move(batch));

  std::vector<const ValidateReply*> replies = ValidateReplies();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0]->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(replies[1]->status, TxnStatus::kValidatedOk);
  KeyEntry* entry = replica_->store().Find(Key(0));
  EXPECT_EQ(entry->readers.size(), 1u) << "in-batch duplicate double-registered";
  EXPECT_EQ(entry->writers.size(), 1u);
}

TEST_F(BatchDispatchFixture, MixedBatchPreservesFifoAcrossKinds) {
  // VALIDATE then COMMIT of the same txn then a GET, all in one batch: the
  // GET must observe the committed write (proving the commit was not
  // reordered around the validate run), and the validate's reply must still
  // be correct.
  std::vector<Message> batch;
  batch.push_back(ValidateOn(0, {1, 1}, {50, 1}));
  batch.push_back(From(1, 0, CommitRequest{{1, 1}, true}));
  batch.push_back(From(2, 0, GetRequest{{2, 1}, 5, Key(0)}));
  transport_.InjectBatch(0, std::move(batch));

  std::vector<const ValidateReply*> vreplies = ValidateReplies();
  ASSERT_EQ(vreplies.size(), 1u);
  EXPECT_EQ(vreplies[0]->status, TxnStatus::kValidatedOk);
  EXPECT_EQ(replica_->store().Read(Key(0)).value, "new");

  const GetReply* get = nullptr;
  for (const Message& m : transport_.sent) {
    if (const auto* p = std::get_if<GetReply>(&m.payload)) {
      get = p;
    }
  }
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->value, "new") << "GET overtook the COMMIT that precedes it in the batch";
}

TEST_F(BatchDispatchFixture, MaintenanceMessageSplitsTheBatchSafely) {
  // A TimerFire between two validates forces the dispatcher to release the
  // gate, flush staged replies, handle the maintenance message, and resume.
  std::vector<Message> batch;
  batch.push_back(ValidateOn(0, {1, 1}, {50, 1}));
  batch.push_back(From(1, 0, TimerFire{12345}));  // Unknown id: ignored.
  batch.push_back(ValidateOn(1, {1, 2}, {51, 1}));
  transport_.InjectBatch(0, std::move(batch));

  std::vector<const ValidateReply*> replies = ValidateReplies();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0]->tid.seq, 1u);
  EXPECT_EQ(replies[1]->tid.seq, 2u);
}

TEST_F(BatchDispatchFixture, BatchRoutesToTheAddressedCorePartition) {
  std::vector<Message> batch;
  Message m = ValidateOn(0, {1, 1}, {50, 1});
  m.core = 1;
  batch.push_back(std::move(m));
  transport_.InjectBatch(1, std::move(batch));
  EXPECT_NE(replica_->trecord().Partition(1).Find({1, 1}), nullptr);
  EXPECT_EQ(replica_->trecord().Partition(0).Find({1, 1}), nullptr);
}

// --- Governor clamps (the 1-CPU deflake satellite) --------------------------

TEST(BatchOptionsTest, SingleCpuHostClampsLingerWindowToZero) {
  BatchOptions opts = BatchOptions().WithFlushDelayNs(200'000).WithMaxMessages(32);
  BatchOptions clamped = opts.ClampedForHost(/*hardware_concurrency=*/1);
  EXPECT_EQ(clamped.flush_delay_ns, 0u)
      << "lingering on a 1-CPU host starves the producer it waits for";
  EXPECT_EQ(clamped.max_messages, 32u);
  EXPECT_TRUE(clamped.enabled);
}

TEST(BatchOptionsTest, MultiCpuHostKeepsLingerWindow) {
  BatchOptions opts = BatchOptions().WithFlushDelayNs(200'000);
  EXPECT_EQ(opts.ClampedForHost(8).flush_delay_ns, 200'000u);
  EXPECT_EQ(opts.ClampedForHost(2).flush_delay_ns, 200'000u);
}

TEST(BatchOptionsTest, ZeroMaxMessagesClampsToOne) {
  EXPECT_EQ(BatchOptions().WithMaxMessages(0).ClampedForHost(8).max_messages, 1u);
  EXPECT_EQ(BatchOptions().WithMaxMessages(0).ClampedForHost(1).max_messages, 1u);
}

TEST(ChannelSpinClampTest, SingleCpuHostDoesNotSpin) {
  EXPECT_EQ(Channel<int>::SpinIterationsForHost(1), 0)
      << "spinning on a 1-CPU host delays the Push being waited for";
  EXPECT_GT(Channel<int>::SpinIterationsForHost(2), 0);
  EXPECT_EQ(Channel<int>::SpinIterationsForHost(2), Channel<int>::SpinIterationsForHost(64));
}

TEST(ChannelPushAllTest, PreservesFifoUnderOneLock) {
  Channel<int> ch;
  int items[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(ch.PushAll(items, 5), 5u);
  std::vector<int> out;
  ASSERT_TRUE(ch.PopAll(out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(ChannelPushAllTest, ClosedChannelAcceptsNothing) {
  Channel<int> ch;
  ch.Close();
  int items[] = {1, 2};
  EXPECT_EQ(ch.PushAll(items, 2), 0u);
  EXPECT_EQ(ch.PushAll(items, 0), 0u);
}

// --- End-to-end over the threaded runtime -----------------------------------

std::vector<std::string> RunRmwWorkload(const SystemOptions& options, int n) {
  ThreadedHarness h(options);
  for (int i = 0; i < n; i++) {
    h.system().Load("key-" + std::to_string(i), "init");
  }
  BlockingClient client(h.system(), 1, /*seed=*/7);
  std::vector<std::string> finals;
  for (int i = 0; i < n; i++) {
    TxnPlan plan;
    plan.ops.push_back(Op::Rmw("key-" + std::to_string(i), "v" + std::to_string(i)));
    TxnOutcome outcome = client.ExecuteWithRetry(plan);
    EXPECT_EQ(outcome.result, TxnResult::kCommit) << "txn " << i;
  }
  h.transport().DrainForTesting();
  for (int i = 0; i < n; i++) {
    ReadResult r = h.system().ReadAtReplica(0, "key-" + std::to_string(i));
    finals.push_back(r.found ? r.value : "<missing>");
  }
  return finals;
}

TEST(BatchPipelineEndToEnd, BatchedAndUnbatchedRunsAgree) {
  SystemOptions batched = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  batched.retry = RetryPolicy::WithTimeout(2'000'000);

  SystemOptions unbatched = batched;
  unbatched.batching = BatchOptions().WithEnabled(false);

  std::vector<std::string> a = RunRmwWorkload(batched, 24);
  std::vector<std::string> b = RunRmwWorkload(unbatched, 24);
  EXPECT_EQ(a, b);
  for (int i = 0; i < 24; i++) {
    EXPECT_EQ(a[i], "v" + std::to_string(i));
  }
}

TEST(BatchPipelineEndToEnd, LingerWindowCommitsEverything) {
  // A nonzero flush window (clamped away automatically on 1-CPU hosts) must
  // only coalesce, never lose or reorder per-endpoint traffic.
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  options.batching = BatchOptions().WithFlushDelayNs(50'000).WithMaxMessages(8);
  std::vector<std::string> finals = RunRmwWorkload(options, 16);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(finals[i], "v" + std::to_string(i));
  }
}

// --- Fault-matrix cells: faults on coalesced traffic stay per-message -------

// Runs one RMW under a scripted fault on ValidateRequest traffic with
// batching enabled and asserts (a) the rule fired, (b) the transaction still
// committed — i.e. dropping/duplicating/delaying a message that may ride a
// coalesced MsgBatch behaves exactly like the same fault on a lone message.
template <typename Harness>
void RunValidateFaultCell(const FaultPlan& plan, uint64_t expect_min_matches) {
  SystemOptions options = DefaultOptions(SystemKind::kMeerkat, /*cores=*/2);
  options.retry = RetryPolicy::WithTimeout(2'000'000);
  options.fault_plan = plan;
  Harness h(options);
  h.system().Load("k", "v0");
  BlockingClient client(h.system(), 1, /*seed=*/7);
  TxnPlan txn;
  txn.ops.push_back(Op::Rmw("k", "v1"));
  TxnOutcome outcome = client.ExecuteWithRetry(txn);
  EXPECT_EQ(outcome.result, TxnResult::kCommit);
  EXPECT_GE(h.transport().faults().rule_matches(0), expect_min_matches)
      << "scripted rule never matched: vacuous cell";
  h.transport().DrainForTesting();
  EXPECT_EQ(h.system().ReadAtReplica(0, "k").value, "v1");
}

TEST(BatchFaultMatrix, ThreadedDropValidateInBatch) {
  RunValidateFaultCell<ThreadedHarness>(FaultPlan().WithSeed(5).DropNth(MsgKind::kValidateRequest, 2),
                                        /*expect_min_matches=*/2);
}

TEST(BatchFaultMatrix, ThreadedDuplicateValidateInBatch) {
  RunValidateFaultCell<ThreadedHarness>(
      FaultPlan().WithSeed(5).DuplicateNth(MsgKind::kValidateRequest, 2),
      /*expect_min_matches=*/2);
}

TEST(BatchFaultMatrix, ThreadedDelayValidateInBatch) {
  RunValidateFaultCell<ThreadedHarness>(
      FaultPlan().WithSeed(5).DelayNth(MsgKind::kValidateRequest, 2, /*delay_ns=*/1'000'000),
      /*expect_min_matches=*/2);
}

TEST(BatchFaultMatrix, UdpDropValidateInBatch) {
  RunValidateFaultCell<UdpHarness>(FaultPlan().WithSeed(5).DropNth(MsgKind::kValidateRequest, 2),
                                   /*expect_min_matches=*/2);
}

TEST(BatchFaultMatrix, UdpDuplicateValidateInBatch) {
  RunValidateFaultCell<UdpHarness>(
      FaultPlan().WithSeed(5).DuplicateNth(MsgKind::kValidateRequest, 2),
      /*expect_min_matches=*/2);
}

}  // namespace
}  // namespace meerkat
